"""Multi-process serving fleet: N ``InferenceServer`` replicas behind a
router.

One :class:`~repro.serve.server.InferenceServer` is GIL-bound: its
worker threads interleave on a single core no matter how fast a single
replay is.  The fleet escapes the GIL the same way the paper escapes a
single SIMD lane -- explicit partitioning: ``replicas`` full server
*processes*, each owning its own admission queue, batcher, worker
threads and engines, fronted by a parent-side :class:`~repro.serve
.router.Router` doing power-of-two-choices dispatch fed by each
replica's ``health()``.

Data plane
    Tensor payloads ride the :class:`~repro.serve.shm.TensorShm` ring:
    the submitting thread writes the image into a leased slot, the
    control pipe carries a few integers, the replica answers into the
    same slot, and the parent reader verifies the generation tag before
    trusting the bytes.  The router itself never touches payloads --
    ``serve.router.bytes_copied`` stays 0 on this path.  When the ring
    is exhausted the payload falls back to pickling through the pipe
    (counted, never an error).

Warm boot
    The parent loads and digest-verifies the stream bundle **once**,
    packs every offset array into a :class:`~repro.serve.shm
    .ShmArrayStore`, and forks.  Each child rebuilds zero-copy
    read-only ``FrozenStream`` views over the same physical pages -- no
    per-replica re-verify, no per-replica deserialize -- and reports
    its ``serve.boot.warm_ms`` so the 1/2/4/8 sweep can show boot cost
    staying flat.

Supervision
    A supervisor thread polls replica health over the control pipe.  A
    dead process (crash, SIGKILL) or a hung one (consecutive missed
    health polls) is detected, its outstanding requests are rerouted to
    surviving replicas (their shm slots reclaimed via generation bump,
    so nothing leaks and no stale write can satisfy another request),
    and the replica is respawned from the same shared warm store with
    bounded exponential backoff.

Fleet lifecycle
    ``drain``/``resume`` roll the PR 5 primitives across replicas;
    ``reload_checkpoint`` canaries the new weights on **one** replica
    first (the rest keep serving old weights), rolls the remainder only
    after the canary passes, and rolls nothing back mid-request: every
    request is pinned to a single replica whose own swap is atomic, so
    no answer ever mixes weights.  ``health()`` aggregates per-replica
    status for ``/healthz``.

The fleet quacks like an ``InferenceServer`` (``submit`` / ``predict``
/ ``drain`` / ``resume`` / ``reload_checkpoint`` / ``health`` /
``stats`` / ``metrics`` / ``config``), so ``serve_http``, ``ServeClient``
and ``loadgen`` drive it unchanged; ``routes_replicas = True`` is the
capability flag the client uses to hedge onto a *different* replica.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import signal
import threading
import time
from contextlib import contextmanager

import numpy as np

from repro.forensics.bundle import IncidentWriter
from repro.forensics.recorder import enable as _recorder_enable
from repro.forensics.recorder import get_recorder
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.serve.config import ServeConfig
from repro.serve.request import (
    DeadlineExceeded,
    InferenceRequest,
    RequestShed,
    ServerClosed,
)
from repro.serve.router import Router
from repro.serve.server import LifecycleBusy, _config_doc
from repro.serve.shm import ShmArrayStore, SlotCorruption, TensorShm
from repro.serve.warmcache import StreamWarmCache
from repro.streams.serialize import StaleArtifactError
from repro.streams.stream import FrozenStream
from repro.types import ReproError, ShapeError

__all__ = ["InferenceFleet", "ReplicaHandle"]

#: supervisor tick (liveness scan); health polls ride every Nth tick
_SUPERVISE_S = 0.01
#: respawn backoff: base * 2**restarts, capped
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0
#: how long a replica reaper waits on one request before giving up on it
_REAPER_TIMEOUT_S = 60.0
#: fields of a FrozenStream, in bundle order (mirrors streams.serialize)
_STREAM_FIELDS = ("kinds", "i_off", "w_off", "o_off", "apply_op")

_ETYPES = {
    "RequestShed": RequestShed,
    "ServerClosed": ServerClosed,
    "DeadlineExceeded": DeadlineExceeded,
    "ShapeError": ShapeError,
    "SlotCorruption": SlotCorruption,
    "TimeoutError": TimeoutError,
}

#: error classes a reroute may retry on a different replica: the replica
#: refused the request without computing anything, so re-dispatching is
#: side-effect free
_REROUTABLE = ("RequestShed", "ServerClosed")


def _map_error(etype: str, msg: str) -> BaseException:
    """Rebuild a typed exception from a child's ``(etype, msg)`` reply."""
    if etype == "CanaryError":
        from repro.serve.server import CanaryError

        return CanaryError(msg)
    cls = _ETYPES.get(etype)
    if cls is not None:
        return cls(msg)
    return ReproError(f"replica error {etype}: {msg}")


def _reinit_shared_locks() -> None:
    """Make process-wide locks sane in a freshly forked child.

    Respawns fork while parent threads are live, so the child can
    inherit the metrics-registry or kernel-cache lock in a *held* state
    with no owner left to release it.  Both protect pure-Python dicts,
    so replacing the lock object in the child is safe."""
    from repro.jit.kernel_cache import get_default_cache
    from repro.obs.metrics import get_metrics

    get_metrics()._lock = threading.Lock()
    get_default_cache()._lock = threading.RLock()


# ----------------------------------------------------------------------
# child process
# ----------------------------------------------------------------------

def _rebuild_warm_cache(config, warm) -> StreamWarmCache:
    """Reconstruct a verified warm cache from the parent's shared store.

    ``warm`` is ``{"store", "index", "replay_meta"}``: the parent
    already digest-verified the bundle, so the child only rebuilds
    zero-copy read-only views -- no load, no verify, no copy."""
    cache = StreamWarmCache(config.fingerprint())
    if warm is None:
        return cache
    store: ShmArrayStore = warm["store"]
    for bucket, nodes in warm["index"].items():
        by_node = {}
        for node, n_streams in nodes.items():
            by_node[node] = [
                FrozenStream(**{
                    field: store.get(f"{bucket}/{node}/{i}/{field}")
                    for field in _STREAM_FIELDS
                })
                for i in range(n_streams)
            ]
        cache.put(bucket, by_node)
    for bucket, meta in (warm.get("replay_meta") or {}).items():
        cache.put_replay_meta(bucket, meta)
    return cache


def _replica_main(
    replica_id: int,
    config: ServeConfig,
    conn,
    shm: TensorShm,
    warm,
    plan: FaultPlan | None,
) -> None:
    """Child entry: boot one ``InferenceServer`` and serve the pipe.

    The main loop only ever blocks on ``conn.recv`` -- request
    completions are harvested by reaper threads -- so health polls are
    answered promptly unless the process is genuinely hung or dead,
    which is exactly what the parent's hang detection should see."""
    _reinit_shared_locks()
    if config.recorder or config.incident_dir:
        # fresh ring per replica: the fork copied the parent's events,
        # and this process's ring is drained back via the stats op
        _recorder_enable(config.recorder or None)
        get_recorder().clear()
    from repro.serve.server import CanaryError, InferenceServer

    injector = FaultInjector(plan) if plan is not None else None
    t0 = time.perf_counter()
    server = InferenceServer(config, fault_injector=injector)
    server.warm_cache = _rebuild_warm_cache(config, warm)
    # engines must see the pre-populated cache, so swap it in pre-start
    try:
        boot = server.start()
    except BaseException as err:  # boot failure: report, don't hang boot
        try:
            conn.send({
                "kind": "boot", "ok": False,
                "error": f"{type(err).__name__}: {err}",
            })
        except OSError:
            pass
        os._exit(17)
    warm_ms = (time.perf_counter() - t0) * 1e3
    server.metrics.set_gauge("serve.boot.warm_ms", warm_ms)

    send_lock = threading.Lock()

    def send(msg: dict) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):  # parent gone: shutting down
                pass

    send({
        "kind": "boot", "ok": True, "pid": os.getpid(),
        "warm_ms": warm_ms, "boot": boot,
    })

    import queue as _queue

    pending: _queue.Queue = _queue.Queue()

    def reaper() -> None:
        while True:
            item = pending.get()
            if item is None:
                return
            msg, req = item
            try:
                probs = req.result(timeout=_REAPER_TIMEOUT_S)
            except BaseException as err:
                send({
                    "kind": "fail", "req": msg["req"],
                    "etype": type(err).__name__, "msg": str(err),
                })
                continue
            slot = msg.get("slot")
            if slot is None:
                send({"kind": "done", "req": msg["req"], "payload": probs})
                continue
            if injector is not None:
                fault = injector.fire("fleet.replica.reply", rank=replica_id)
                if fault is not None and fault.kind == "corrupt_message":
                    # scribble the slot's generation header: the parent
                    # must refuse the payload and fail only this request
                    shm.write_header(slot, msg["gen"] + 0xBAD)
            out = shm.response_view(slot)
            out[:] = probs
            send({
                "kind": "done", "req": msg["req"],
                "slot": slot, "gen": msg["gen"],
            })

    reapers = [
        threading.Thread(target=reaper, name=f"fleet-reaper-{i}",
                         daemon=True)
        for i in range(max(2, config.workers + 1))
    ]
    for t in reapers:
        t.start()

    def rep(op_id, ok: bool, payload=None, etype="", msg_="") -> None:
        send({
            "kind": "rep", "id": op_id, "ok": ok,
            "payload": payload, "etype": etype, "msg": msg_,
        })

    def handle_op(op_id, fn) -> None:
        try:
            rep(op_id, True, fn())
        except BaseException as err:
            rep(op_id, False, etype=type(err).__name__, msg_=str(err))

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "stop":
                break
            if op == "predict":
                if injector is not None:
                    fault = injector.fire("fleet.replica.predict", rank=replica_id)
                    if fault is not None:
                        if fault.kind == "crash":
                            os._exit(23)
                        if fault.kind == "hang":
                            # stalls the recv loop: health polls go
                            # unanswered, which is what a real hang does
                            time.sleep(fault.delay_s)
                slot = msg.get("slot")
                x = (
                    shm.request_view(slot) if slot is not None
                    else msg["payload"]
                )
                deadline = (
                    time.perf_counter() + msg["deadline_ms"] / 1e3
                    if msg.get("deadline_ms") is not None
                    else None
                )
                try:
                    req = server.submit(x, deadline=deadline)
                except BaseException as err:
                    send({
                        "kind": "fail", "req": msg["req"],
                        "etype": type(err).__name__, "msg": str(err),
                    })
                else:
                    pending.put((msg, req))
            elif op == "poll":

                def _health():
                    h = server.health()
                    h["replica_id"] = replica_id
                    replicas = server._replicas
                    h["bucket_tiers"] = (
                        replicas[0].bucket_tiers() if replicas else {}
                    )
                    return h

                try:
                    send({"kind": "health", "payload": _health()})
                except BaseException:  # never let a poll kill the loop
                    pass
            elif op == "stats":
                handle_op(msg["id"], lambda: {
                    "stats": server.stats(),
                    "snapshot": server.metrics.snapshot(),
                    "ring": (
                        get_recorder().export_events(clear=True)
                        if get_recorder().enabled else []
                    ),
                })
            elif op == "drain":
                handle_op(
                    msg["id"], lambda: server.drain(msg["timeout_s"])
                )
            elif op == "resume":
                handle_op(msg["id"], server.resume)
            elif op == "reload":
                handle_op(msg["id"], lambda: server.reload_checkpoint(
                    msg["path"], canary_seed=msg["canary_seed"]
                ))
    finally:
        for _ in reapers:
            pending.put(None)
        try:
            server.stop()
        except BaseException:
            pass
        try:
            conn.close()
        except OSError:
            pass
        # skip inherited atexit/mp cleanup meant for the parent
        os._exit(0)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

class _Dispatch:
    """Parent-side record of one request sent to one replica."""

    __slots__ = ("req", "lease", "attempts")

    def __init__(self, req, lease, attempts: int):
        self.req = req
        self.lease = lease
        self.attempts = attempts


class ReplicaHandle:
    """Parent-side view of one replica process: pipe, process handle,
    outstanding dispatches, and the last health report (the router's
    balancing inputs)."""

    def __init__(self, replica_id: int):
        self.id = replica_id
        self.proc = None
        self.conn = None
        self.reader: threading.Thread | None = None
        #: "init" -> "booting" -> "up" | "reloading" | "down"
        self.state = "init"
        self.lock = threading.Lock()
        self.send_lock = threading.Lock()
        self.outstanding: dict[int, _Dispatch] = {}
        self.boot_event = threading.Event()
        self.boot_error: str | None = None
        self.boot: dict = {}
        self.warm_ms: float | None = None
        self.pid: int | None = None
        self.restarts = 0
        # router inputs, refreshed by health polls
        self.est_wait_ms = 0.0
        self.queue_depth = 0
        self.degraded_buckets: tuple = ()
        self.bucket_tiers: dict = {}
        self.health: dict = {}
        self.missed_polls = 0

    @property
    def available(self) -> bool:
        return self.state == "up"

    @property
    def outstanding_count(self) -> int:
        return len(self.outstanding)

    def summary(self) -> dict:
        return {
            "id": self.id,
            "state": self.state,
            "pid": self.pid,
            "restarts": self.restarts,
            "outstanding": self.outstanding_count,
            "est_wait_ms": self.est_wait_ms,
            "queue_depth": self.queue_depth,
            "degraded_buckets": list(self.degraded_buckets),
            "warm_ms": self.warm_ms,
            "status": self.health.get("status"),
            "checkpoint": self.health.get("checkpoint"),
        }


class InferenceFleet:
    """N server processes + router + shared-memory tensor transport.

    Duck-types the ``InferenceServer`` surface so the HTTP front end,
    ``ServeClient`` and ``loadgen`` work unchanged against a fleet.

    ``hang_polls``: consecutive unanswered health polls before a replica
    is declared hung and SIGKILLed (the crash path then respawns it).
    """

    #: capability flag: ``ServeClient`` hedges to a different replica
    routes_replicas = True

    def __init__(
        self,
        config: ServeConfig,
        replicas: int = 2,
        fault_plan: FaultPlan | None = None,
        shm_slots: int | None = None,
        health_period_ms: float = 25.0,
        hang_polls: int = 40,
        max_respawns: int = 8,
        seed: int = 0,
    ):
        if replicas < 1:
            raise ReproError(f"fleet needs >= 1 replica, got {replicas}")
        self.config = config
        self.replicas = int(replicas)
        self.fault_plan = fault_plan
        self.metrics = MetricsRegistry()
        self._health_period_s = health_period_ms / 1e3
        self._hang_polls = int(hang_polls)
        self.max_respawns = int(max_respawns)
        if shm_slots is None:
            shm_slots = max(64, 4 * self.replicas * config.max_bucket)
        self._shm_slots = int(shm_slots)
        self._handles = [ReplicaHandle(i) for i in range(self.replicas)]
        self._router = Router(self._handles, self.metrics, seed=seed)
        self._shm: TensorShm | None = None
        self._warm: dict | None = None
        self._warm_store: ShmArrayStore | None = None
        self._mail: dict[int, list] = {}
        self._op_ids = itertools.count()
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._lifecycle = threading.Lock()
        if config.recorder or config.incident_dir:
            _recorder_enable(config.recorder or None)
        self._incidents = IncidentWriter(config.incident_dir)
        self.boot_stats: dict = {}
        self._started = False
        self._draining = False
        try:
            self._ctx = mp.get_context("fork")
        except ValueError as err:  # pragma: no cover -- non-POSIX
            raise ReproError(
                "the serving fleet requires the fork start method "
                f"(unavailable on this platform: {err})"
            ) from err

    # -- boot ----------------------------------------------------------
    def _pack_warm(self, streams_artifact) -> str | None:
        """Load + verify the stream bundle once; pack it into shared
        memory for every replica.  Returns the rejection message when
        the artifact is stale/corrupt (replicas then cold-boot)."""
        cache = StreamWarmCache(self.config.fingerprint())
        try:
            cache.load(streams_artifact)
        except StaleArtifactError as err:
            self.metrics.inc("serve.artifact_rejected")
            return str(err)
        arrays: dict[str, np.ndarray] = {}
        index: dict[int, dict[str, int]] = {}
        for bucket in cache.buckets:
            by_node = cache.get(bucket) or {}
            index[bucket] = {}
            for node, streams in by_node.items():
                index[bucket][node] = len(streams)
                for i, stream in enumerate(streams):
                    for field in _STREAM_FIELDS:
                        arrays[f"{bucket}/{node}/{i}/{field}"] = getattr(
                            stream, field
                        )
        self._warm_store = ShmArrayStore.from_arrays(arrays)
        self._warm = {
            "store": self._warm_store,
            "index": index,
            "replay_meta": {
                bucket: cache.replay_meta(bucket)
                for bucket in cache.buckets
                if cache.replay_meta(bucket)
            },
        }
        self.metrics.set_gauge(
            "serve.fleet.warm_shared_bytes", self._warm_store.nbytes
        )
        return None

    def start(self, streams_artifact=None) -> dict:
        """Boot every replica; returns fleet boot stats.

        ``streams_artifact`` is loaded and digest-verified exactly once
        in the parent; replicas rebuild read-only views over shared
        pages (a stale artifact is rejected here and every replica
        cold-boots, mirroring single-server semantics)."""
        if self._started:
            raise ReproError("fleet already started")
        t0 = time.perf_counter()
        artifact_error: str | None = None
        if streams_artifact is not None:
            if self.config.engine != "blocked":
                raise ReproError(
                    "stream warm-start applies only to the blocked engine"
                )
            artifact_error = self._pack_warm(streams_artifact)
        self._shm = TensorShm(
            self._shm_slots,
            request_shape=self.config.input_shape,
            response_shape=(self.config.num_classes,),
        )
        self._stopping.clear()
        for handle in self._handles:
            self._spawn(handle)
        deadline = time.monotonic() + 120.0
        for handle in self._handles:
            if not handle.boot_event.wait(max(0.0, deadline - time.monotonic())):
                self.stop()
                raise ReproError(
                    f"fleet replica {handle.id} did not boot in time"
                )
            if handle.boot_error is not None:
                err = handle.boot_error
                self.stop()
                raise ReproError(
                    f"fleet replica {handle.id} failed to boot: {err}"
                )
        self._supervisor = threading.Thread(
            target=self._supervise, name="fleet-supervisor", daemon=True
        )
        self._started = True
        self._supervisor.start()
        boot_s = time.perf_counter() - t0
        warm_ms = {h.id: h.warm_ms for h in self._handles}
        for h in self._handles:
            if h.warm_ms is not None:
                self.metrics.set_gauge(
                    f"serve.boot.warm_ms.r{h.id}", h.warm_ms
                )
        self.boot_stats = {
            "boot_s": boot_s,
            "engine": self.config.engine,
            "replicas": self.replicas,
            "warm_ms": warm_ms,
            "bundle_verified_once": self._warm is not None,
            "bundle_shared_bytes": (
                self._warm_store.nbytes if self._warm_store else 0
            ),
            "shm": self._shm.stats(),
            "per_replica": {h.id: dict(h.boot) for h in self._handles},
        }
        if artifact_error is not None:
            self.boot_stats["artifact_error"] = artifact_error
        self.metrics.set_gauge("serve.boot_s", boot_s)
        return self.boot_stats

    def _spawn(self, handle: ReplicaHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        handle.conn = parent_conn
        handle.state = "booting"
        handle.boot_event.clear()
        handle.boot_error = None
        handle.missed_polls = 0
        handle.proc = self._ctx.Process(
            target=_replica_main,
            name=f"fleet-replica-{handle.id}",
            args=(
                handle.id, self.config, child_conn, self._shm,
                self._warm, self.fault_plan,
            ),
            daemon=True,
        )
        handle.proc.start()
        child_conn.close()
        handle.reader = threading.Thread(
            target=self._read_loop, args=(handle,),
            name=f"fleet-reader-{handle.id}", daemon=True,
        )
        handle.reader.start()

    # -- reader: one thread per replica pipe ---------------------------
    def _read_loop(self, handle: ReplicaHandle) -> None:
        conn = handle.conn
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            handle.missed_polls = 0
            kind = msg.get("kind")
            if kind == "done":
                self._on_done(handle, msg)
            elif kind == "fail":
                self._on_fail(handle, msg)
            elif kind == "health":
                self._on_health(handle, msg["payload"])
            elif kind == "rep":
                entry = self._mail.get(msg["id"])
                if entry is not None:
                    entry[1] = msg
                    entry[0].set()
            elif kind == "boot":
                if msg.get("ok"):
                    handle.pid = msg["pid"]
                    handle.warm_ms = msg["warm_ms"]
                    handle.boot = msg["boot"]
                    handle.state = "up"
                else:
                    handle.boot_error = msg.get("error", "boot failed")
                    handle.state = "down"
                handle.boot_event.set()

    def _pop_dispatch(self, handle: ReplicaHandle, req_id) -> _Dispatch | None:
        with handle.lock:
            return handle.outstanding.pop(req_id, None)

    def _on_done(self, handle: ReplicaHandle, msg: dict) -> None:
        disp = self._pop_dispatch(handle, msg["req"])
        if disp is None:  # already failed/rerouted by the crash path
            return
        if disp.lease is None:
            disp.req._resolve(np.asarray(msg["payload"], dtype=np.float32))
            return
        try:
            self._shm.check(disp.lease, msg["gen"])
        except SlotCorruption as err:
            self.metrics.inc("serve.fleet.shm_corruption")
            # capture BEFORE reclaim: the request region (written only
            # by the parent) is still intact; reclaim returns the slot
            # to the ring and a new lease could overwrite it
            self._capture_slot_incident(handle, disp, err)
            self._shm.reclaim(disp.lease)
            disp.req._fail(err)
            return
        probs = np.array(
            self._shm.response_view(disp.lease.slot), dtype=np.float32
        )
        self._shm.release(disp.lease)
        disp.req._resolve(probs)

    def _capture_slot_incident(
        self, handle: ReplicaHandle, disp: _Dispatch, err: SlotCorruption
    ) -> None:
        """Freeze the corrupted exchange into an incident bundle.

        Runs on the reader thread, so it must not round-trip on any
        replica pipe: the failing request tensor is read back from the
        slot's *request* region (the replica scribbled the header, the
        parent-written request bytes are intact) and only the parent's
        flight-recorder ring rides along."""
        if not self._incidents.enabled:
            return
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                "fleet.slot_corruption", replica=handle.id,
                slot=disp.lease.slot, req=disp.req.id,
            )
        x = np.array(
            self._shm.request_view(disp.lease.slot), dtype=np.float32
        )
        self._incidents.capture(
            "serve",
            error=err,
            replay={"mode": "serve", "bucket": int(self.config.buckets[0])},
            config=_config_doc(self.config),
            config_fingerprint=self.config.fingerprint(),
            fault_plan=self.fault_plan,
            tensors={"x": x[None]},
            extra={
                "trigger": "slot_corruption",
                "replica": handle.id,
                "slot": disp.lease.slot,
                "restarts": handle.restarts,
            },
        )

    def _on_fail(self, handle: ReplicaHandle, msg: dict) -> None:
        disp = self._pop_dispatch(handle, msg["req"])
        if disp is None:
            return
        if disp.lease is not None:
            self._shm.release(disp.lease)
        err = _map_error(msg["etype"], msg["msg"])
        if (
            msg["etype"] in _REROUTABLE
            and disp.attempts < self.replicas
            and not disp.req.expired
            and not self._stopping.is_set()
            and not self._draining
        ):
            try:
                self._router.note_reroute()
                self._dispatch(
                    disp.req, attempts=disp.attempts, exclude=handle.id
                )
                return
            except BaseException as redisp_err:
                err = redisp_err
        disp.req._fail(err)

    def _on_health(self, handle: ReplicaHandle, payload: dict) -> None:
        handle.health = payload
        handle.est_wait_ms = float(payload.get("estimated_wait_ms", 0.0))
        handle.queue_depth = int(payload.get("queue_depth", 0))
        handle.degraded_buckets = tuple(
            payload.get("degraded_buckets", ())
        )
        handle.bucket_tiers = payload.get("bucket_tiers", {})

    # -- supervisor: liveness, hang detection, respawn -----------------
    def _supervise(self) -> None:
        next_poll = time.monotonic()
        while not self._stopping.wait(_SUPERVISE_S):
            poll_due = time.monotonic() >= next_poll
            if poll_due:
                next_poll = time.monotonic() + self._health_period_s
            for handle in self._handles:
                proc = handle.proc
                if handle.state in ("init", "down") or proc is None:
                    continue
                if not proc.is_alive():
                    self._on_replica_death(handle)
                    continue
                if handle.state != "up" or not poll_due:
                    continue
                if handle.missed_polls >= self._hang_polls:
                    self.metrics.inc("serve.fleet.hung_killed")
                    try:
                        os.kill(proc.pid, signal.SIGKILL)
                    except (ProcessLookupError, OSError):
                        pass
                    continue  # death handled on a later tick
                handle.missed_polls += 1
                try:
                    with handle.send_lock:
                        handle.conn.send({"op": "poll"})
                except (BrokenPipeError, OSError):
                    pass  # liveness check will catch it

    def _on_replica_death(self, handle: ReplicaHandle) -> None:
        with handle.lock:
            if handle.state == "down":
                return
            handle.state = "down"
            orphans = list(handle.outstanding.values())
            handle.outstanding.clear()
        self.metrics.inc("serve.fleet.replica_crashes")
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.reader is not None:
            handle.reader.join(timeout=5.0)
        handle.proc.join(timeout=5.0)
        for disp in orphans:
            if disp.lease is not None:
                # generation bump: the slot returns to the ring and any
                # late write from the dead replica is detectable garbage
                self._shm.reclaim(disp.lease)
                disp.lease = None
            if disp.req.done:
                continue
            if disp.req.expired:
                disp.req._fail(DeadlineExceeded(
                    "deadline passed while replica was being replaced"
                ))
                continue
            try:
                self._router.note_reroute()
                self._dispatch(
                    disp.req, attempts=disp.attempts, exclude=handle.id
                )
            except BaseException as err:
                disp.req._fail(err)
        if self._stopping.is_set():
            return
        if handle.restarts >= self.max_respawns:
            self.metrics.inc("serve.fleet.respawns_exhausted")
            return
        delay = min(
            _BACKOFF_BASE_S * (2 ** handle.restarts), _BACKOFF_CAP_S
        )
        if self._stopping.wait(delay):
            return
        handle.restarts += 1
        self.metrics.inc("serve.fleet.respawns")
        self._spawn(handle)

    # -- dispatch ------------------------------------------------------
    def _dispatch(
        self,
        req: InferenceRequest,
        attempts: int = 0,
        exclude: int | None = None,
    ) -> None:
        """Route one request: pick a replica, lease a slot, write the
        tensor, send the control message.  Retries the pick when a
        replica dies between pick and send."""
        lease = self._shm.acquire(timeout_s=0.0)
        if lease is not None:
            self._shm.request_view(lease.slot)[:] = req.x
        else:
            self._router.note_copy(req.x.nbytes)
        last_err: BaseException | None = None
        for _ in range(self.replicas):
            try:
                handle = self._router.pick(exclude=exclude)
            except RequestShed:
                if lease is not None:
                    self._shm.release(lease)
                raise
            disp = _Dispatch(req, lease, attempts + 1)
            with handle.lock:
                if handle.state != "up":  # died between pick and lock
                    exclude = handle.id
                    continue
                handle.outstanding[req.id] = disp
            req.replica_id = handle.id
            msg = {
                "op": "predict", "req": req.id,
                "slot": lease.slot if lease is not None else None,
                "gen": lease.generation if lease is not None else None,
                "payload": req.x if lease is None else None,
                "deadline_ms": (
                    max(0.0, req.remaining_s()) * 1e3
                    if req.deadline is not None else None
                ),
            }
            try:
                with handle.send_lock:
                    handle.conn.send(msg)
                return
            except (BrokenPipeError, OSError) as err:
                # picked a corpse: undo, exclude it, try another
                self._pop_dispatch(handle, req.id)
                last_err = err
                exclude = handle.id
        if lease is not None:
            self._shm.release(lease)
        raise RequestShed(
            f"no fleet replica accepted the request ({last_err})"
        )

    # -- InferenceServer surface ---------------------------------------
    def submit(
        self,
        x: np.ndarray,
        deadline: float | None = None,
        exclude_replica: int | None = None,
    ) -> InferenceRequest:
        """Admit one image into the fleet; returns the pending request.

        ``exclude_replica`` keeps a hedged backup off the primary's
        replica (soft: a lone survivor still serves)."""
        if not self._started:
            raise ServerClosed("fleet not started")
        if self._draining:
            raise ServerClosed("fleet is draining")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.config.input_shape:
            raise ShapeError(
                f"request shape {x.shape} != configured "
                f"{self.config.input_shape}"
            )
        req = InferenceRequest(x, deadline=deadline)
        self._dispatch(req, attempts=0, exclude=exclude_replica)
        return req

    def predict(
        self,
        x: np.ndarray,
        timeout: float | None = 30.0,
        deadline: float | None = None,
    ) -> np.ndarray:
        return self.submit(x, deadline=deadline).result(timeout)

    # -- admin ops over the pipe ---------------------------------------
    def _call(self, handle: ReplicaHandle, msg: dict, timeout: float):
        op_id = next(self._op_ids)
        event = threading.Event()
        self._mail[op_id] = [event, None]
        msg = dict(msg, id=op_id)
        try:
            with handle.send_lock:
                handle.conn.send(msg)
        except (BrokenPipeError, OSError) as err:
            self._mail.pop(op_id, None)
            raise ReproError(
                f"replica {handle.id} unreachable for {msg['op']}: {err}"
            ) from err
        if not event.wait(timeout):
            self._mail.pop(op_id, None)
            raise ReproError(
                f"replica {handle.id} did not answer {msg['op']} "
                f"within {timeout:.1f}s"
            )
        reply = self._mail.pop(op_id)[1]
        if reply["ok"]:
            return reply["payload"]
        raise _map_error(reply["etype"], reply["msg"])

    def _up_handles(self) -> list[ReplicaHandle]:
        return [h for h in self._handles if h.state == "up"]

    @contextmanager
    def _lifecycle_op(self, name: str):
        """Serialize fleet lifecycle operations; a second one arriving
        while one is in flight is refused with :class:`LifecycleBusy`
        (HTTP 409) instead of queueing behind it and interleaving its
        per-replica rollout with the running one's."""
        if not self._lifecycle.acquire(blocking=False):
            raise LifecycleBusy(
                f"another fleet lifecycle operation is in flight; "
                f"retry {name} after it completes"
            )
        try:
            rec = get_recorder()
            if rec.enabled:
                rec.record(f"fleet.{name}")
            yield
        finally:
            self._lifecycle.release()

    def drain(self, timeout_s: float = 30.0) -> dict:
        """Rolling drain: stop fleet admission, then quiesce each
        replica in turn.  Outstanding dispatches finish normally."""
        if not self._started:
            raise ServerClosed("fleet not started")
        with self._lifecycle_op("drain"):
            if self._draining:
                raise ReproError("fleet already draining")
            self._draining = True
            reports = {}
            for handle in self._up_handles():
                reports[handle.id] = self._call(
                    handle, {"op": "drain", "timeout_s": timeout_s},
                    timeout=timeout_s + 10.0,
                )
            self.metrics.inc("serve.fleet.drains")
            return {
                "drained_replicas": sorted(reports),
                "per_replica": reports,
            }

    def resume(self) -> dict:
        if not self._started:
            raise ServerClosed("fleet not started")
        with self._lifecycle_op("resume"):
            if not self._draining:
                raise ReproError("fleet is not draining")
            reports = {}
            for handle in self._up_handles():
                reports[handle.id] = self._call(
                    handle, {"op": "resume"}, timeout=30.0
                )
            self._draining = False
            return {
                "resumed_replicas": sorted(reports),
                "per_replica": reports,
            }

    def reload_checkpoint(self, path: str, canary_seed: int = 0) -> dict:
        """Rolling reload with a per-replica canary.

        One replica reloads first (inside it, PR 5's shadow-build +
        numerics canary + atomic slot swap runs as usual); only when it
        passes do the remaining replicas roll, one at a time, each
        routed around while swapping.  A canary failure rolls back that
        one replica (its server already restored old weights) and
        leaves the rest untouched -- the fleet keeps serving old
        weights uniformly.  Requests never mix weights: each is pinned
        to one replica whose swap is atomic."""
        if not self._started:
            raise ServerClosed("fleet not started")
        with self._lifecycle_op("reload"):
            ups = self._up_handles()
            if not ups:
                raise ServerClosed("no live replica to reload")
            canary, rest = ups[0], ups[1:]
            canary.state = "reloading"
            try:
                reports = {canary.id: self._call(
                    canary,
                    {"op": "reload", "path": path,
                     "canary_seed": canary_seed},
                    timeout=120.0,
                )}
            except BaseException:
                self.metrics.inc("serve.fleet.reload_rollbacks")
                raise
            finally:
                canary.state = "up"
            for handle in rest:
                handle.state = "reloading"
                try:
                    reports[handle.id] = self._call(
                        handle,
                        {"op": "reload", "path": path,
                         "canary_seed": canary_seed},
                        timeout=120.0,
                    )
                except BaseException as err:
                    self.metrics.inc("serve.fleet.reload_partial")
                    raise ReproError(
                        f"rolling reload failed at replica {handle.id} "
                        f"after canary passed: {err}"
                    ) from err
                finally:
                    handle.state = "up"
            self.metrics.inc("serve.fleet.reloads")
            return {
                "checkpoint": path,
                "canary_replica": canary.id,
                "reloaded_replicas": sorted(reports),
                "per_replica": reports,
            }

    # -- health / stats ------------------------------------------------
    def health(self) -> dict:
        """Aggregated ``/healthz`` payload: fleet status plus the last
        health report each replica pushed (no blocking pipe calls)."""
        live = self._up_handles()
        replica_degraded = any(
            h.health.get("status") not in (None, "ok") for h in live
        )
        if not self._started or not live:
            status = "down"
        elif (
            len(live) < self.replicas
            or replica_degraded
            or self._draining
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "started": self._started,
            "draining": self._draining,
            "replicas": self.replicas,
            "live_replicas": len(live),
            "respawns": self.metrics.value("serve.fleet.respawns"),
            "replica_crashes": self.metrics.value(
                "serve.fleet.replica_crashes"
            ),
            "estimated_wait_ms": min(
                (h.est_wait_ms for h in live), default=0.0
            ),
            "queue_depth": sum(h.queue_depth for h in live),
            "degraded_buckets": sorted(
                {b for h in live for b in h.degraded_buckets}
            ),
            "checkpoint": self.config.checkpoint,
            "per_replica": {h.id: h.summary() for h in self._handles},
            "router": self._router.stats(),
            "shm": self._shm.stats() if self._shm else {},
        }

    def stats(self) -> dict:
        """Fleet SLO snapshot: parent-side counters, router + shm
        stats, per-replica server stats fetched live, and the merged
        cross-replica metrics view."""
        per_replica = {}
        snapshots = []
        for handle in self._up_handles():
            try:
                payload = self._call(handle, {"op": "stats"}, timeout=30.0)
            except ReproError:
                continue
            per_replica[handle.id] = payload["stats"]
            snapshots.append(payload["snapshot"])
            ring = payload.get("ring")
            if ring:
                # replica flight-recorder events drain into the
                # parent's ring, tagged with the replica's pid
                get_recorder().ingest(ring, pid=handle.pid)
        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "replicas": self.replicas,
            "router": self._router.stats(),
            "shm": self._shm.stats() if self._shm else {},
            "boot": dict(self.boot_stats),
            "merged": merge_snapshots(snapshots),
            "per_replica": per_replica,
            "health": self.health(),
        }

    def dump_incident(self) -> str:
        """Operator capture (``POST /admin/dump``): drain every live
        replica's flight-recorder ring into the parent, then freeze
        config + merged rings + a replayable canary request into one
        bundle.  Returns the bundle path."""
        if not self._started:
            raise ServerClosed("fleet not started")
        if not self._incidents.enabled:
            raise ReproError(
                "no incident directory configured; set "
                "ServeConfig.incident_dir to enable /admin/dump"
            )
        self.stats()  # pulls replica rings into the parent recorder
        rec = get_recorder()
        if rec.enabled:
            rec.record("fleet.dump")
        bucket = self.config.buckets[0]
        rng = np.random.default_rng(self.config.seed)
        x = rng.standard_normal(
            (bucket, *self.config.input_shape)
        ).astype(np.float32)
        path = self._incidents.capture(
            "manual",
            replay={"mode": "serve", "bucket": int(bucket)},
            config=_config_doc(self.config),
            config_fingerprint=self.config.fingerprint(),
            fault_plan=self.fault_plan,
            tensors={"x": x},
            extra={"trigger": "dump", "health": self.health()},
        )
        if path is None:
            raise ReproError("incident capture failed (see metrics)")
        return path

    # -- shutdown ------------------------------------------------------
    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        for handle in self._handles:
            proc = handle.proc
            if proc is None:
                continue
            try:
                with handle.send_lock:
                    handle.conn.send({"op": "stop"})
            except (BrokenPipeError, OSError):
                pass
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover -- stubborn child
                proc.terminate()
                proc.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
            if handle.reader is not None:
                handle.reader.join(timeout=5.0)
            with handle.lock:
                orphans = list(handle.outstanding.values())
                handle.outstanding.clear()
                handle.state = "down"
            for disp in orphans:
                if disp.lease is not None:
                    self._shm.reclaim(disp.lease)
                if not disp.req.done:
                    disp.req._fail(ServerClosed("fleet stopped"))
        if self._shm is not None:
            self._shm.close()
            self._shm = None
        if self._warm_store is not None:
            self._warm_store.close()
            self._warm_store = None
        self._warm = None
        self._started = False
        self._draining = False

    def __enter__(self) -> "InferenceFleet":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
