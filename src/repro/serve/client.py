"""A real serving client: timeouts, bounded retries, hedging.

Naive callers (the old loadgen, ad-hoc scripts) call ``predict`` with a
hard-coded timeout and crash -- or hang -- on anything else.
:class:`ServeClient` is the production shape of that call:

* **per-request timeout** from :class:`ClientConfig`, never a magic
  constant at the call site;
* **bounded retries with jittered exponential backoff**, and only for
  outcomes retrying can help: load shedding / 503 (the server said "not
  now").  4xx (the request itself is wrong) and deadline overruns / 504
  (the answer is already worthless) are never retried;
* an optional client-side :class:`~repro.serve.breaker.CircuitBreaker`,
  so a client facing a drowning server stops adding load and fast-fails
  instead;
* **hedging**: once enough latency samples exist, a request that is
  still unresolved at the observed p95 places one backup attempt and
  takes whichever answer lands first (tail latency traded for a little
  extra load; in-process transport only -- an HTTP hedge would need a
  second connection pool for little test value).

The same client drives an in-process :class:`InferenceServer` (pass the
server) or a remote one (pass a base URL string); the HTTP transport
maps status codes back to the in-process exception types so callers and
the retry policy see one vocabulary.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np

from repro.serve.breaker import CircuitBreaker
from repro.serve.request import (
    DeadlineExceeded,
    RequestShed,
    ServerClosed,
)
from repro.types import ReproError, ShapeError

__all__ = ["ClientConfig", "ServeClient"]

#: latency samples retained for the hedge-cutoff p95
_LAT_WINDOW = 512


@dataclass(frozen=True)
class ClientConfig:
    """How one :class:`ServeClient` behaves.

    ``max_retries`` counts *re*-tries: 2 means up to three attempts.
    ``jitter`` spreads each backoff uniformly over ``+/- jitter`` of its
    nominal value so a shed burst does not resynchronise into a retry
    stampede.  ``hedge`` arms the p95 backup attempt once
    ``hedge_min_samples`` latencies have been observed.
    """

    timeout_s: float = 30.0
    max_retries: int = 2
    backoff_base_s: float = 0.01
    backoff_max_s: float = 0.5
    jitter: float = 0.5
    hedge: bool = False
    hedge_min_samples: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")


class _InProcessTransport:
    """Submit/await against an :class:`InferenceServer` in this process
    (the only transport that can hedge: it sees individual requests)."""

    def __init__(self, server):
        self.server = server

    def call(self, x, timeout_s, deadline, hedge_cutoff_s):
        """Returns ``(probs, hedged, hedge_won)``."""
        if hedge_cutoff_s is None or hedge_cutoff_s >= timeout_s:
            req = self.server.submit(x, deadline=deadline)
            return req.result(timeout_s), False, False
        primary = self.server.submit(x, deadline=deadline)
        if primary._event.wait(hedge_cutoff_s):
            return primary.result(0), False, False
        # slow: place the backup attempt.  If admission sheds it, the
        # hedge simply doesn't happen -- the primary is still in flight
        # and adding retries here would feed the very overload that made
        # the primary slow.  Against a fleet, the backup is steered to a
        # *different* replica than the one holding the slow primary --
        # a hedge that lands behind the same queue buys nothing.
        kwargs = {}
        if (
            getattr(self.server, "routes_replicas", False)
            and primary.replica_id is not None
        ):
            kwargs["exclude_replica"] = primary.replica_id
        try:
            backup = self.server.submit(x, deadline=deadline, **kwargs)
        except (RequestShed, ServerClosed):
            backup = None
        end = time.perf_counter() + max(0.0, timeout_s - hedge_cutoff_s)
        winner = None
        while time.perf_counter() < end:
            if primary.done:
                winner = primary
                break
            if backup is not None and backup.done:
                winner = backup
                break
            time.sleep(0.0005)
        if winner is None:
            primary.cancel()
            if backup is not None:
                backup.cancel()
            raise TimeoutError(
                f"request not completed within {timeout_s}s (hedged)"
            )
        loser = backup if winner is primary else primary
        if loser is not None:
            loser.cancel()
        return winner.result(0), backup is not None, winner is not primary


class _HttpTransport:
    """POST /predict against a remote server; status codes map back to
    the in-process exception vocabulary so one retry policy serves both
    transports."""

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def call(self, x, timeout_s, deadline, hedge_cutoff_s):
        body = json.dumps({"input": np.asarray(x).tolist()}).encode()
        headers = {"Content-Type": "application/json"}
        if deadline is not None:
            remaining_ms = (deadline - time.perf_counter()) * 1e3
            if remaining_ms <= 0:
                raise DeadlineExceeded("deadline expired before the call")
            headers["X-Deadline-Ms"] = f"{remaining_ms:.3f}"
        req = urllib.request.Request(
            f"{self.base_url}/predict", data=body, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout_s) as resp:
                doc = json.loads(resp.read())
        except urllib.error.HTTPError as err:
            detail = self._error_detail(err)
            if err.code == 503:
                raise RequestShed(detail) from err
            if err.code == 504:
                raise DeadlineExceeded(detail) from err
            if 400 <= err.code < 500:
                raise ShapeError(detail) from err
            raise ReproError(f"HTTP {err.code}: {detail}") from err
        except urllib.error.URLError as err:
            if isinstance(err.reason, TimeoutError):
                raise TimeoutError(
                    f"no response within {timeout_s}s"
                ) from err
            raise ReproError(f"request failed: {err.reason}") from err
        except TimeoutError:
            raise TimeoutError(f"no response within {timeout_s}s") from None
        return np.asarray(doc["probs"], dtype=np.float32), False, False

    @staticmethod
    def _error_detail(err: urllib.error.HTTPError) -> str:
        try:
            return json.loads(err.read()).get("error", str(err))
        except Exception:  # noqa: BLE001 -- body is best-effort
            return str(err)


class ServeClient:
    """Retrying, hedging, breaker-guarded front door to one server.

    ``target`` is an :class:`~repro.serve.server.InferenceServer`, an
    :class:`~repro.serve.fleet.InferenceFleet` (the fleet endpoint:
    retries, hedging and the breaker run unchanged against the router,
    and hedged backups are steered to a *different* replica than the
    slow primary), or an HTTP base URL string.  Thread-safe: the load
    generators share one client across every worker thread.
    """

    def __init__(
        self,
        target,
        config: ClientConfig | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        self.config = config if config is not None else ClientConfig()
        self.breaker = breaker
        self._transport = (
            _HttpTransport(target) if isinstance(target, str)
            else _InProcessTransport(target)
        )
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(self.config.seed)
        self._latencies_s: list[float] = []
        self._counters = {
            "requests": 0,
            "completed": 0,
            "retries": 0,
            "timeouts": 0,
            "deadline_exceeded": 0,
            "shed_failures": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "breaker_fast_fails": 0,
        }

    def _inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def _hedge_cutoff_s(self) -> float | None:
        """The observed p95 latency, once hedging is armed and fed."""
        if not self.config.hedge:
            return None
        with self._lock:
            n = len(self._latencies_s)
            if n < self.config.hedge_min_samples:
                return None
            s = sorted(self._latencies_s)
        return s[min(n - 1, int(0.95 * n))]

    def _backoff_s(self, attempt: int) -> float:
        nominal = min(
            self.config.backoff_max_s,
            self.config.backoff_base_s * (2 ** attempt),
        )
        if self.config.jitter == 0.0:
            return nominal
        with self._lock:
            spread = self._rng.uniform(-self.config.jitter,
                                       self.config.jitter)
        return max(0.0, nominal * (1.0 + spread))

    def predict(
        self, x: np.ndarray, deadline_ms: float | None = None
    ) -> np.ndarray:
        """One image's probabilities, with the full client policy.

        ``deadline_ms`` (relative, from now) becomes the request's
        absolute deadline and is propagated through every attempt --
        including over HTTP via the ``X-Deadline-Ms`` header.  Raises
        :class:`RequestShed` once retries are exhausted (or immediately
        when the breaker is open), :class:`DeadlineExceeded` /
        ``TimeoutError`` without any retry, and 4xx-class errors
        (:class:`ShapeError`) untouched.
        """
        cfg = self.config
        deadline = (
            time.perf_counter() + deadline_ms / 1e3
            if deadline_ms is not None else None
        )
        self._inc("requests")
        last_shed: BaseException | None = None
        for attempt in range(cfg.max_retries + 1):
            if self.breaker is not None and not self.breaker.allow():
                self._inc("breaker_fast_fails")
                raise RequestShed(
                    "client circuit breaker is open; fast-failing"
                )
            t0 = time.perf_counter()
            try:
                probs, hedged, hedge_won = self._transport.call(
                    x, cfg.timeout_s, deadline, self._hedge_cutoff_s()
                )
            except (RequestShed, ServerClosed) as err:
                # 503-class: the server said "not now" -- the one
                # outcome a backoff-and-retry can actually fix
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_shed = err
                if attempt < cfg.max_retries:
                    self._inc("retries")
                    delay = self._backoff_s(attempt)
                    if deadline is not None:
                        remaining = deadline - time.perf_counter()
                        if remaining <= delay:
                            break  # retrying past the deadline is waste
                    time.sleep(delay)
                    continue
                break
            except DeadlineExceeded:
                self._inc("deadline_exceeded")
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise  # 504: the answer is already worthless
            except TimeoutError:
                self._inc("timeouts")
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise
            except ShapeError:
                raise  # 4xx: our fault, not the server's health
            except ReproError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                raise  # 500-class: not retryable by policy
            if self.breaker is not None:
                self.breaker.record_success()
            with self._lock:
                self._counters["completed"] += 1
                if hedged:
                    self._counters["hedges"] += 1
                if hedge_won:
                    self._counters["hedge_wins"] += 1
                self._latencies_s.append(time.perf_counter() - t0)
                if len(self._latencies_s) > _LAT_WINDOW:
                    del self._latencies_s[0]
            return probs
        self._inc("shed_failures")
        raise last_shed

    def stats(self) -> dict:
        """Counter snapshot plus the hedge cutoff currently in force."""
        with self._lock:
            out = dict(self._counters)
        cutoff = self._hedge_cutoff_s()
        out["hedge_cutoff_ms"] = (
            cutoff * 1e3 if cutoff is not None else None
        )
        return out
