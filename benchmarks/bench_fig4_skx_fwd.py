"""Figure 4: ResNet-50 forward propagation on single-socket SKX.

Six series over the 20 Table-I layer ids: this work, MKL-DNN, im2col,
libxsmm, blas, autovec -- plus this work's % of machine peak (the right
y-axis).  Expected shape (asserted): 3x3 layers ~80% peak, 1x1 ~70%,
layers 2-3 lowest (~55%); im2col up to ~3x slower (more on the 7x7 stem),
small-GEMM baselines up to ~9x, autovec up to ~16x.
"""

import statistics

from conftest import emit, series_row

from repro.arch.machine import SKX
from repro.baselines import estimate_autovec, estimate_im2col, estimate_smallgemm
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def compute_fig4():
    model = ConvPerfModel(SKX)
    rows = {k: [] for k in
            ("thiswork", "mkl", "im2col", "libxsmm", "blas", "autovec", "eff")}
    for lid, p in resnet50_layers(28):
        tw = model.estimate_forward(p)
        rows["thiswork"].append(tw.gflops)
        rows["eff"].append(100 * tw.efficiency)
        rows["mkl"].append(model.estimate_forward(p, impl="mkl").gflops)
        rows["im2col"].append(estimate_im2col(p, SKX).gflops)
        rows["libxsmm"].append(estimate_smallgemm(p, SKX, "libxsmm").gflops)
        rows["blas"].append(estimate_smallgemm(p, SKX, "blas").gflops)
        rows["autovec"].append(estimate_autovec(p, SKX).gflops)
    return rows


def test_fig4(benchmark):
    rows = benchmark(compute_fig4)
    ids = list(range(1, 21))
    lines = [series_row("layer", ids, "7d")]
    for name in ("thiswork", "mkl", "im2col", "libxsmm", "blas", "autovec"):
        lines.append(series_row(name, rows[name]))
    lines.append(series_row("% peak", rows["eff"], "7.1f"))
    emit("Fig. 4: ResNet-50 fwd, SKX (GFLOPS/layer)", lines)

    tw = rows["thiswork"]
    # shape assertions (paper section III-A)
    r3 = [rows["eff"][i - 1] for i in (4, 8, 13, 18)]
    assert all(70 <= e <= 90 for e in r3)
    assert statistics.mean(rows["eff"][1:3]) < statistics.mean(r3)
    assert max(t / x for t, x in zip(tw, rows["blas"])) > 6
    assert max(t / a for t, a in zip(tw, rows["autovec"])) > 9
    assert all(t >= i * 0.95 for t, i in zip(tw, rows["im2col"]))
