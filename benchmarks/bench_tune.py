"""Autotuning benchmark: tuned mapspace winners vs the paper heuristics.

For each Table-1 ResNet-50 layer this searches the full mapspace
(:func:`repro.tune.search_mapspace` -- analytical pricing, cachesim
refinement, bit-exact validation), then measures two things against the
heuristic plan:

* **roofline**: modeled cycles of the tuned winner vs the heuristic,
  both priced at identical model fidelity (win rate is >= 1.0 per layer
  by construction -- the heuristic itself rides through the finalist
  refinement, so the winner can never price worse);
* **wall-clock**: compiled-tier replay time of a real
  :class:`DirectConvForward` built with the tuned plan + prefetch vs one
  built with the heuristics, on identical blocked inputs, asserting the
  two outputs are *bitwise* identical (register/cache blocking never
  changes the reduction order).

Run as a plain script (not pytest -- the timing loop is its own harness)::

    PYTHONPATH=src python benchmarks/bench_tune.py --quick
    PYTHONPATH=src python benchmarks/bench_tune.py --out BENCH_tune.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

import numpy as np

from repro.arch.machine import SKX
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.models.resnet50 import resnet50_layer
from repro.tensor.blocked import block_activations, block_weights
from repro.tune import search_mapspace

#: Table-1 ids spanning the shape space: early wide-spatial, 1x1
#: projections, strided 3x3, and the deep narrow-spatial tail
DEFAULT_LAYERS = [1, 2, 4, 8, 12, 16, 20]


def _time_call(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_layer(
    layer_id: int,
    p: ConvParams,
    repeats: int,
    top_k: int,
    max_candidates: int | None,
) -> dict:
    t0 = time.perf_counter()
    outcome = search_mapspace(
        p, SKX, top_k=top_k, max_candidates=max_candidates,
    )
    search_s = time.perf_counter() - t0

    rng = np.random.default_rng(layer_id)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)

    times = {}
    outs = {}
    heur_cand = outcome.heuristic.candidate
    for name, plan, prefetch in (
        ("heuristic", heur_cand.plan(p, SKX), heur_cand.prefetch),
        ("tuned", outcome.plan, outcome.best.candidate.prefetch),
    ):
        eng = DirectConvForward(
            p, machine=SKX, plan=plan, prefetch=prefetch,
            execution_tier="compiled",
        )
        bx = block_activations(x, plan.vlen, pad_h=p.pad_h, pad_w=p.pad_w)
        bw = block_weights(w, plan.vlen)

        def run(eng=eng, bx=bx, bw=bw):
            return eng(bx, bw)

        outs[name] = run().data.copy()  # warm: streams recorded + compiled
        times[name] = _time_call(run, repeats)

    return {
        "layer": layer_id,
        "params": p.describe(),
        "candidates": outcome.candidates,
        "rejected": outcome.rejected,
        "search_s": search_s,
        "tuned": outcome.best.candidate.describe(),
        "heuristic": heur_cand.describe(),
        "model_cycles_tuned": outcome.best.cycles,
        "model_cycles_heuristic": outcome.heuristic.cycles,
        "model_speedup": outcome.speedup,
        "wall_s_tuned": times["tuned"],
        "wall_s_heuristic": times["heuristic"],
        "wall_speedup": times["heuristic"] / times["tuned"],
        "exact": bool(
            np.array_equal(
                outs["tuned"].view(np.uint32),
                outs["heuristic"].view(np.uint32),
            )
        ),
    }


def _geomean(vals) -> float:
    vals = list(vals)
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--layers", default=None,
                    help="comma-separated Table-1 layer ids "
                         f"(default {DEFAULT_LAYERS})")
    ap.add_argument("--minibatch", type=int, default=1,
                    help="N per layer (plans are N-independent; 1 keeps "
                         "the wall-clock loop affordable)")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--top-k", type=int, default=8)
    ap.add_argument("--max-candidates", type=int, default=None,
                    help="truncate the mapspace enumeration per layer")
    ap.add_argument("--quick", action="store_true",
                    help="two small layers with a truncated mapspace "
                         "(CI smoke)")
    ap.add_argument("--out", default="BENCH_tune.json")
    ap.add_argument("--min-tune-winrate", type=float, default=0.0,
                    help="fail if the modeled win rate (tuned <= "
                         "heuristic cycles) is below this fraction")
    args = ap.parse_args(argv)

    if args.quick:
        layers = [2, 8]
        if args.max_candidates is None:
            args.max_candidates = 150
    else:
        layers = (
            [int(t) for t in args.layers.split(",")]
            if args.layers else DEFAULT_LAYERS
        )

    rows = []
    for lid in layers:
        p = resnet50_layer(lid, minibatch=args.minibatch)
        row = bench_layer(
            lid, p, args.repeats, args.top_k, args.max_candidates,
        )
        rows.append(row)
        print(
            f"layer {lid:>2}  model {row['model_speedup']:6.3f}x  "
            f"wall {row['wall_speedup']:6.3f}x  "
            f"({row['candidates']} pts, search {row['search_s']:.1f}s, "
            f"rej {row['rejected']})  exact={row['exact']}  "
            f"{row['tuned']}"
        )

    model_wins = sum(r["model_speedup"] >= 1.0 for r in rows)
    wall_wins = sum(r["wall_speedup"] >= 1.0 for r in rows)
    all_exact = all(r["exact"] for r in rows)
    report = {
        "bench": "tune",
        "machine": SKX.name,
        "machine_fingerprint": SKX.fingerprint(),
        "minibatch": args.minibatch,
        "repeats": args.repeats,
        "top_k": args.top_k,
        "max_candidates": args.max_candidates,
        "layers": rows,
        "model_win_rate": model_wins / len(rows),
        "wall_win_rate": wall_wins / len(rows),
        "geomean_model_speedup": _geomean(
            r["model_speedup"] for r in rows),
        "geomean_wall_speedup": _geomean(r["wall_speedup"] for r in rows),
        "all_exact": all_exact,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(
        f"model: win rate {report['model_win_rate']:.0%}, geomean "
        f"{report['geomean_model_speedup']:.3f}x | wall: win rate "
        f"{report['wall_win_rate']:.0%}, geomean "
        f"{report['geomean_wall_speedup']:.3f}x over {len(rows)} layers "
        f"-> {args.out}"
    )

    if not all_exact:
        print("FAIL: a tuned plan is not bitwise-identical to the "
              "heuristic plan's output", file=sys.stderr)
        return 1
    if report["model_win_rate"] < args.min_tune_winrate:
        print(
            f"FAIL: modeled win rate {report['model_win_rate']:.2f} < "
            f"required {args.min_tune_winrate}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
