"""Figure 8: ResNet-50 reduced-precision (int16) kernels on KNM.

fp32 vs qi16f32 GFLOPS for (a) forward, (b) backward, (c) weight update.
Expected averages (section III-B): fwd ~1.63x, bwd ~1.58x, upd ~1.3x, and
never the ideal 2x (32-bit outputs + restricted accumulation chains).
"""

import statistics

from conftest import emit, series_row

from repro.arch.machine import KNM
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from repro.types import DType


def compute_fig8():
    model = ConvPerfModel(KNM)
    rows = {k: [] for k in ("fwd32", "fwd16", "bwd32", "bwd16",
                            "upd32", "upd16")}
    for lid, p in resnet50_layers(70):
        rows["fwd32"].append(model.estimate_forward(p).gflops)
        rows["fwd16"].append(
            model.estimate_forward(p, dtype=DType.QI16F32).gflops
        )
        rows["bwd32"].append(model.estimate_backward(p).gflops)
        rows["bwd16"].append(
            model.estimate_backward(p, dtype=DType.QI16F32).gflops
        )
        rows["upd32"].append(model.estimate_update(p).gflops)
        rows["upd16"].append(
            model.estimate_update(p, dtype=DType.QI16F32).gflops
        )
    return rows


def test_fig8(benchmark):
    rows = benchmark(compute_fig8)
    ids = list(range(1, 21))
    for tag, a, b in (("a: fwd", "fwd32", "fwd16"),
                      ("b: bwd", "bwd32", "bwd16"),
                      ("c: upd", "upd32", "upd16")):
        speed = [q / f for f, q in zip(rows[a], rows[b])]
        emit(
            f"Fig. 8{tag}, KNM fp32 vs int16 (GFLOPS/layer)",
            [series_row("layer", ids, "7d"),
             series_row("fp32", rows[a]),
             series_row("int16", rows[b]),
             series_row("speedup", speed, "7.2f")],
        )
    sp_f = statistics.mean(q / f for f, q in zip(rows["fwd32"], rows["fwd16"]))
    sp_b = statistics.mean(q / f for f, q in zip(rows["bwd32"], rows["bwd16"]))
    sp_u = statistics.mean(q / f for f, q in zip(rows["upd32"], rows["upd16"]))
    assert 1.45 <= sp_f <= 1.80  # paper: 1.63
    assert 1.30 <= sp_b <= 1.75  # paper: 1.58
    assert 1.15 <= sp_u <= 1.50  # paper: 1.3
    for f, q in zip(rows["fwd32"], rows["fwd16"]):
        assert q / f < 2.2  # never the ideal 2x
