"""Wall-clock benchmarks of the *functional* engines themselves.

These time the Python/numpy implementations (not the modelled machines):
the blocked streams engine vs the reference loops vs the baselines on a
scaled-down layer, plus one GxM training step.  Useful for tracking the
library's own performance over time.
"""

import numpy as np
import pytest

from repro.arch.machine import SKX
from repro.baselines import im2col_forward
from repro.conv.backward import DirectConvBackward
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.conv.upd import DirectConvUpd
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology

P = ConvParams(N=2, C=32, K=32, H=14, W=14, R=3, S=3, stride=1)
RNG = np.random.default_rng(0)
X = RNG.standard_normal((P.N, P.C, P.H, P.W)).astype(np.float32)
W = RNG.standard_normal((P.K, P.C, P.R, P.S)).astype(np.float32)
DY = RNG.standard_normal((P.N, P.K, P.P, P.Q)).astype(np.float32)


def test_blocked_forward(benchmark):
    eng = DirectConvForward(P, machine=SKX, threads=4)
    from repro.tensor.blocked import block_activations, block_weights

    bx = block_activations(X, 16, pad_h=P.pad_h, pad_w=P.pad_w)
    bw = block_weights(W, 16)
    out = benchmark(lambda: eng(bx, bw))
    assert np.isfinite(out.data).all()


def test_reference_forward(benchmark):
    out = benchmark(lambda: conv2d_forward(X, W, P))
    assert out.shape == (P.N, P.K, P.P, P.Q)


def test_im2col_forward(benchmark):
    out = benchmark(lambda: im2col_forward(X, W, P))
    assert out.shape == (P.N, P.K, P.P, P.Q)


def test_blocked_backward(benchmark):
    eng = DirectConvBackward(P, machine=SKX, threads=4)
    out = benchmark(lambda: eng.run_nchw(DY, W))
    assert out.shape == X.shape


def test_blocked_update(benchmark):
    eng = DirectConvUpd(P, machine=SKX, threads=4)
    out = benchmark(lambda: eng.run_nchw(X, DY))
    assert out.shape == W.shape


def test_gxm_train_step(benchmark):
    topo = resnet_mini_topology(num_classes=4, width=16)
    etg = ExecutionTaskGraph(topo, (8, 16, 12, 12), seed=0)
    tr = Trainer(etg, lr=0.01)
    ds = SyntheticImageDataset(n=8, num_classes=4, shape=(16, 12, 12))
    x, y = next(ds.batches(8))
    loss = benchmark(lambda: tr.train_step(x, y))
    assert np.isfinite(loss)
