"""Ablations: output load/store hoisting (II-D a) and 1x1 loop order (II-C).

* Hoisting: with the O block kept in registers across the R,S taps, the
  3x3 kernel issues 9x fewer output loads/stores -- the structural edge
  over batched small GEMMs.
* Loop order: pulling c_b inside the spatial loops for 1x1 layers keeps
  the output block in registers across the whole reduction (one store per
  output, no read-back), versus C_b load+store round-trips.
"""

from conftest import emit

from repro.arch.isa import Op
from repro.arch.machine import SKX
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.timing import time_kernel

BASE = dict(
    vlen=16, rb_p=1, rb_q=14, stride=1,
    i_strides=(100000, 1000, 16), w_strides=(100000, 800, 256, 16),
    o_strides=(900, 16), fused_memop=True,
)


def compute():
    hoisted = generate_conv_kernel(
        ConvKernelDesc(R=3, S=3, hoist_output=True, **BASE)
    )
    unhoisted = generate_conv_kernel(
        ConvKernelDesc(R=3, S=3, hoist_output=False, **BASE)
    )
    cb_inner = generate_conv_kernel(
        ConvKernelDesc(R=1, S=1, cb_unroll=16, zero_init=True, **BASE)
    )
    cb_outer = generate_conv_kernel(
        ConvKernelDesc(R=1, S=1, cb_unroll=1, **BASE)
    )
    return hoisted, unhoisted, cb_inner, cb_outer


def ostores(prog):
    return sum(1 for u in prog.uops if u.op is Op.VSTORE and u.tensor == "O")


def test_hoisting_and_loop_order(benchmark):
    hoisted, unhoisted, cb_inner, cb_outer = benchmark(compute)

    th = time_kernel(hoisted, SKX)
    tu = time_kernel(unhoisted, SKX)
    emit(
        "Ablation: R,S output hoisting (3x3, SKX)",
        [f"hoisted:    {ostores(hoisted):4d} O-stores, eff "
         f"{100*th.efficiency(SKX):5.1f}% ({th.bottleneck})",
         f"un-hoisted: {ostores(unhoisted):4d} O-stores, eff "
         f"{100*tu.efficiency(SKX):5.1f}% ({tu.bottleneck})"],
    )
    assert ostores(unhoisted) == 9 * ostores(hoisted)
    # a compute-bound 3x3 kernel hides the extra port pressure, but the
    # store/load port cost is strictly higher and becomes the layer-level
    # L1<->L2 traffic the small-GEMM baselines pay (see repro.baselines)
    assert tu.store_cycles > th.store_cycles
    assert tu.load_cycles > th.load_cycles
    assert tu.cycles >= th.cycles

    # loop order: one store per output for cb_inner vs Cb (16) round-trips
    # of load+store for the cb_outer sequence covering the same reduction
    ti = time_kernel(cb_inner, SKX)
    to = time_kernel(cb_outer, SKX)
    stores_inner = ostores(cb_inner)
    stores_outer_total = 16 * ostores(cb_outer)
    emit(
        "Ablation: 1x1 loop order (C=256, SKX)",
        [f"c_b inside (II-C): {stores_inner} O-stores per output block",
         f"c_b outside:       {stores_outer_total} O-stores (+ "
         f"{15 * ostores(cb_outer)} re-loads) per output block"],
    )
    assert stores_inner == ostores(cb_outer)  # one per accumulator
    assert stores_outer_total == 16 * stores_inner
    # per-flop cost must not be worse for the fused reduction
    assert ti.cycles / cb_inner.flops <= to.cycles * 16 / (cb_outer.flops * 16)
