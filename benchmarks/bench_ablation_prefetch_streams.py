"""Ablations: two-level prefetch (II-E) and kernel streams (II-H).

* Prefetch: disabling software prefetch exposes L2/DRAM miss latency in the
  layer model; the cache simulator shows the mechanism (demand hits on
  prefetched lines).
* Streams: replacing replay with the branchy per-call logic adds dispatch
  overhead to every microkernel invocation; the hit is largest for layers
  with many small kernels.
"""

import numpy as np

from conftest import emit, series_row

from repro.arch.machine import SKX
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def compute():
    model = ConvPerfModel(SKX)
    rows = {"base": [], "no_prefetch": [], "no_streams": []}
    for lid, p in resnet50_layers(28):
        rows["base"].append(model.estimate_forward(p).gflops)
        rows["no_prefetch"].append(
            model.estimate_forward(p, prefetch=False).gflops
        )
        rows["no_streams"].append(
            model.estimate_forward(p, streams=False).gflops
        )
    return rows


def test_prefetch_and_streams(benchmark):
    rows = benchmark(compute)
    ids = list(range(1, 21))
    emit(
        "Ablation: prefetch / kernel streams (SKX fwd GFLOPS)",
        [series_row("layer", ids, "7d"),
         series_row("base", rows["base"]),
         series_row("no-pf", rows["no_prefetch"]),
         series_row("branchy", rows["no_streams"])],
    )
    base = np.array(rows["base"])
    nopf = np.array(rows["no_prefetch"])
    nost = np.array(rows["no_streams"])
    assert np.all(nopf <= base + 1e-9)
    assert np.all(nost <= base + 1e-9)
    # prefetch matters most on the bandwidth-lean layers; streams overhead
    # shows up where kernels are small
    assert (base / nopf).max() > 1.02
    assert (base / nost).max() > 1.01
