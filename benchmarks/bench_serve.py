"""Serving benchmark: dynamic batching vs batch-1, cold vs warm boot.

Three measurements, one JSON report:

1. **Batching throughput** -- identical closed-loop load against two
   servers: one with dynamic batching disabled (``buckets=(1,)``, every
   request runs alone) and one with the full bucket ladder.  The
   acceptance bar is >= 3x the batch-1 throughput at equal-or-better
   p99 latency, with outputs bitwise identical to unbatched
   ``InferenceSession.predict``.
2. **Bitwise identity** -- every response from the concurrent run is
   compared against the direct batch-1 reference.
3. **Boot latency** -- blocked-engine cold boot (dryrun records every
   stream) vs warm boot from a saved stream artifact (dryrun skipped).
   Both boots run in the same process *after* a throwaway boot, so the
   JIT kernel cache is hot and the delta isolates the dryrun itself.
4. **Execution tiers** -- per-bucket blocked-engine predict latency,
   ``compiled`` vs ``stream_compiled`` (whole-segment closure replay),
   with bitwise-identical outputs required.
5. **Fleet sweep** -- the same closed-loop load against an
   ``InferenceFleet`` at 1/2/4/8 replica processes vs the 1-process
   server baseline.  Every sweep row re-checks bitwise identity vs
   direct predict and asserts the shared-memory hot path never copied
   (``serve.router.bytes_copied == 0``).  Throughput scaling tracks
   available cores -- the report records ``host.cpus`` so a 1-core
   container's flat curve is not mistaken for a fleet regression; the
   ``--min-fleet-scaling`` gate is meant for multi-core runners.
6. **Fleet warm boot** -- blocked-engine fleet boot from one shared
   verified stream bundle at 1/2/4/8 replicas: per-replica
   ``serve.boot.warm_ms`` must stay flat as the fleet grows (the
   bundle is loaded and verified once, not once per replica).
7. **Flight-recorder overhead** -- identical closed-loop load with the
   :mod:`repro.forensics` recorder disabled vs enabled (admission +
   batch events per request).  The record path is one GIL-atomic deque
   append, so the p50 delta must stay inside noise;
   ``--max-recorder-overhead 0.02`` gates it at 2%.

Run as a plain script (not pytest -- the timing loop is its own harness)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time

import numpy as np

from repro.gxm.inference import InferenceSession
from repro.serve import InferenceServer, ServeConfig, run_closed_loop


def _closed_sweep(cfg: ServeConfig, requests: int, client_counts) -> list:
    server = InferenceServer(cfg)
    server.start()
    try:
        levels = []
        for clients in client_counts:
            rep = run_closed_loop(
                server, clients=clients, requests=requests, seed=clients
            )
            levels.append(
                {
                    "clients": clients,
                    "completed": rep.completed,
                    "throughput_rps": rep.throughput_rps,
                    "latency_ms": rep.latency_ms,
                }
            )
            print(
                f"  clients {clients:>3}: {rep.throughput_rps:8.0f} req/s  "
                f"p50 {rep.latency_ms['p50']:6.2f}ms  "
                f"p99 {rep.latency_ms['p99']:6.2f}ms"
            )
    finally:
        server.stop()
    return levels


def bench_batching(cfg: ServeConfig, requests: int, client_counts) -> dict:
    """Same closed-loop load, batching off (buckets=(1,)) vs on."""
    from dataclasses import replace

    print("  batching OFF (buckets=(1,)):")
    off = _closed_sweep(replace(cfg, buckets=(1,)), requests, client_counts)
    print("  batching ON:")
    on = _closed_sweep(cfg, requests, client_counts)
    # compare at the highest concurrency -- the load batching exists for
    base, best = off[-1], on[-1]
    return {
        "nobatch_levels": off,
        "batched_levels": on,
        "clients": base["clients"],
        "batch1_rps": base["throughput_rps"],
        "batched_rps": best["throughput_rps"],
        "speedup": best["throughput_rps"] / base["throughput_rps"],
        "batch1_p99_ms": base["latency_ms"]["p99"],
        "batched_p99_ms": best["latency_ms"]["p99"],
        "p99_improved": (
            best["latency_ms"]["p99"] <= base["latency_ms"]["p99"]
        ),
    }


def bench_bitwise(cfg: ServeConfig, n: int) -> dict:
    """Concurrently served outputs vs direct batch-1 predictions."""
    import threading

    rng = np.random.default_rng(11)
    xs = rng.standard_normal((n, *cfg.input_shape)).astype(np.float32)
    with InferenceSession(cfg.build_etg(1)) as sess:
        refs = [sess.predict(x[None])[0].copy() for x in xs]
    server = InferenceServer(cfg)
    server.start()
    try:
        outs = [None] * n
        barrier = threading.Barrier(n)

        def client(i):
            barrier.wait()
            outs[i] = server.predict(xs[i])

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.stop()
    exact = all(
        np.array_equal(
            out.view(np.uint32), ref.view(np.uint32)
        )
        for out, ref in zip(outs, refs)
    )
    return {"requests": n, "exact": exact}


def bench_boot(cfg: ServeConfig) -> dict:
    """Cold (dryrun) vs warm (stream replay) blocked-engine boot."""
    # throwaway boot so codegen/compilation is cached for both timed boots
    throwaway = InferenceServer(cfg)
    throwaway.start()
    buf = io.BytesIO()
    entries = throwaway.save_streams_artifact(buf)
    throwaway.stop()

    t0 = time.perf_counter()
    cold = InferenceServer(cfg)
    cold_boot = cold.start()
    cold_s = time.perf_counter() - t0
    cold.stop()

    buf.seek(0)
    t0 = time.perf_counter()
    warm = InferenceServer(cfg)
    warm_boot = warm.start(streams_artifact=buf)
    warm_s = time.perf_counter() - t0
    warm.stop()

    assert not cold_boot["warm_buckets"] and not warm_boot["cold_buckets"]
    return {
        "engine": cfg.engine,
        "buckets": list(cfg.buckets),
        "stream_entries": entries,
        "cold_boot_s": cold_s,
        "warm_boot_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def bench_tiers(cfg: ServeConfig, buckets, repeats: int) -> dict:
    """Per-bucket predict latency: compiled vs stream_compiled replay on
    the same blocked engine (same streams, same JIT'ed variants)."""
    rng = np.random.default_rng(5)
    rows = []
    for bucket in buckets:
        x = rng.standard_normal(
            (bucket, *cfg.input_shape)
        ).astype(np.float32)
        row = {"bucket": bucket}
        outs = {}
        for tier in ("compiled", "stream_compiled"):
            etg = cfg.build_etg(bucket, execution_tier=tier)
            with InferenceSession(etg) as sess:
                sess.predict(x)  # warm up: plan building / stream lowering
                times = []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    out = sess.predict(x)
                    times.append(time.perf_counter() - t0)
                outs[tier] = out.copy()
            times.sort()
            row[f"{tier}_p50_ms"] = times[len(times) // 2] * 1e3
        row["exact"] = bool(
            np.array_equal(
                outs["compiled"].view(np.uint32),
                outs["stream_compiled"].view(np.uint32),
            )
        )
        row["speedup"] = (
            row["compiled_p50_ms"] / row["stream_compiled_p50_ms"]
        )
        rows.append(row)
        print(
            f"  bucket {bucket:>2}: compiled p50 "
            f"{row['compiled_p50_ms']:7.2f}ms  stream_compiled p50 "
            f"{row['stream_compiled_p50_ms']:7.2f}ms  "
            f"({row['speedup']:.2f}x, exact={row['exact']})"
        )
    return {"repeats": repeats, "buckets": rows}


def bench_fleet(
    cfg: ServeConfig, requests: int, clients: int, replica_counts,
    sample_n: int,
) -> dict:
    """Closed-loop throughput vs replica count, single-process baseline.

    Each sweep row re-checks a sample of fleet responses bitwise against
    direct ``InferenceSession`` predictions and asserts the router never
    copied a tensor on the hot path (``serve.router.bytes_copied == 0``;
    pickle fallbacks on ring exhaustion are recorded separately).
    """
    import os

    from repro.serve import InferenceFleet

    rng = np.random.default_rng(23)
    xs = rng.standard_normal((sample_n, *cfg.input_shape)).astype(np.float32)
    with InferenceSession(cfg.build_etg(1)) as sess:
        refs = [sess.predict(x[None])[0].copy() for x in xs]

    server = InferenceServer(cfg)
    server.start()
    try:
        base = run_closed_loop(
            server, clients=clients, requests=requests, seed=1
        )
    finally:
        server.stop()
    base_rps = base.throughput_rps
    print(
        f"  1-process server : {base_rps:8.0f} req/s  "
        f"p99 {base.latency_ms['p99']:6.2f}ms"
    )

    rows = []
    for n in replica_counts:
        fleet = InferenceFleet(cfg, replicas=n)
        fleet.start()
        try:
            rep = run_closed_loop(
                fleet, clients=clients, requests=requests, seed=n
            )
            outs = [fleet.predict(x) for x in xs]
            router = fleet._router.stats()
        finally:
            fleet.stop()
        exact = all(
            np.array_equal(out.view(np.uint32), ref.view(np.uint32))
            for out, ref in zip(outs, refs)
        )
        row = {
            "replicas": n,
            "completed": rep.completed,
            "throughput_rps": rep.throughput_rps,
            "latency_ms": rep.latency_ms,
            "scaling_vs_1proc": rep.throughput_rps / base_rps,
            "bytes_copied": router.get("serve.router.bytes_copied", 0),
            "shm_fallback": router.get("serve.router.shm_fallback", 0),
            "rerouted": router.get("serve.router.rerouted", 0),
            "exact": exact,
        }
        rows.append(row)
        print(
            f"  {n:>2} replica fleet : {rep.throughput_rps:8.0f} req/s  "
            f"p99 {rep.latency_ms['p99']:6.2f}ms  "
            f"({row['scaling_vs_1proc']:.2f}x, exact={exact}, "
            f"bytes_copied={row['bytes_copied']})"
        )

    by_n = {row["replicas"]: row for row in rows}
    at4 = by_n.get(4)
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = os.cpu_count() or 1
    return {
        "clients": clients,
        "requests": requests,
        "host": {"cpus": os.cpu_count(), "usable_cpus": usable},
        "baseline_rps": base_rps,
        "baseline_p99_ms": base.latency_ms["p99"],
        "levels": rows,
        "scaling_at_4": at4["scaling_vs_1proc"] if at4 else None,
        "p99_at_4_ok": (
            at4["latency_ms"]["p99"] <= base.latency_ms["p99"]
            if at4 else None
        ),
        "exact": all(row["exact"] for row in rows),
        "zero_copy": all(row["bytes_copied"] == 0 for row in rows),
    }


def bench_fleet_boot(cfg: ServeConfig, replica_counts) -> dict:
    """Warm fleet boot from one shared verified bundle at each size.

    The bundle is loaded + verified once in the parent and shared to
    every replica read-only, so per-replica ``serve.boot.warm_ms`` must
    stay flat as the fleet grows -- modulo CPU oversubscription: all
    replicas boot concurrently, so on a host with fewer cores than
    replicas each boot's wall clock stretches by up to
    ``replicas / cores`` without any extra work being done.  The
    ``warm_ms_flat`` verdict normalises by that factor.
    """
    import os

    from repro.serve import InferenceFleet

    donor = InferenceServer(cfg)
    donor.start()
    buf = io.BytesIO()
    donor.save_streams_artifact(buf)
    donor.stop()

    rows = []
    for n in replica_counts:
        buf.seek(0)
        t0 = time.perf_counter()
        fleet = InferenceFleet(cfg, replicas=n)
        try:
            boot = fleet.start(streams_artifact=buf)
            boot_s = time.perf_counter() - t0
        finally:
            fleet.stop()
        warm_ms = [boot["warm_ms"][rid] for rid in sorted(boot["warm_ms"])]
        assert all(
            not b["cold_buckets"] for b in boot["per_replica"].values()
        ), "fleet warm boot left cold buckets"
        rows.append(
            {
                "replicas": n,
                "boot_s": boot_s,
                "warm_ms": warm_ms,
                "warm_ms_max": max(warm_ms),
                "bundle_shared_bytes": boot["bundle_shared_bytes"],
            }
        )
        print(
            f"  {n:>2} replicas: boot {boot_s * 1e3:7.1f}ms  "
            f"per-replica warm "
            f"{'/'.join(f'{w:.0f}' for w in warm_ms)}ms"
        )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    base_ms = max(rows[0]["warm_ms_max"], 1.0)
    oversub = max(1.0, rows[-1]["replicas"] / cores)
    return {
        "engine": cfg.engine,
        "buckets": list(cfg.buckets),
        "levels": rows,
        "warm_ms_flat": rows[-1]["warm_ms_max"] <= 3.0 * oversub * base_ms,
    }


def bench_recorder_overhead(
    cfg: ServeConfig, requests: int, clients: int, rounds: int,
) -> dict:
    """Identical closed-loop load, flight recorder off vs on.

    Runs back-to-back off/on pairs for ``rounds`` rounds and takes the
    *median of the per-round paired overheads*: adjacent runs see
    nearly the same background load, so pairing cancels machine-load
    drift and the median discards an unlucky round -- scheduler noise
    on small runners easily exceeds the effect being measured (one
    GIL-atomic deque append per recorded event).
    """
    from dataclasses import replace

    from repro.forensics import disable, get_recorder

    def _run(config: ServeConfig) -> dict:
        server = InferenceServer(config)
        server.start()
        try:
            rep = run_closed_loop(
                server, clients=clients, requests=requests, seed=17
            )
        finally:
            server.stop()
        return rep.latency_ms

    off_runs, on_runs = [], []
    try:
        _run(replace(cfg, recorder=0))  # warm-up: JIT + allocator caches
        for _ in range(rounds):
            disable()
            off_runs.append(_run(replace(cfg, recorder=0)))
            on_runs.append(_run(replace(cfg, recorder=4096)))
    finally:
        # the recorder knob arms the process-wide singleton; put it back
        disable()
        get_recorder().clear()

    def _paired_overhead(key: str) -> float:
        deltas = sorted(
            (on[key] - off[key]) / off[key]
            for off, on in zip(off_runs, on_runs) if off[key]
        )
        return deltas[len(deltas) // 2] if deltas else 0.0

    off_p50 = min(r["p50"] for r in off_runs)
    on_p50 = min(r["p50"] for r in on_runs)
    off_p99 = min(r["p99"] for r in off_runs)
    on_p99 = min(r["p99"] for r in on_runs)
    row = {
        "requests": requests,
        "clients": clients,
        "rounds": rounds,
        "disabled_p50_ms": off_p50,
        "enabled_p50_ms": on_p50,
        "disabled_p99_ms": off_p99,
        "enabled_p99_ms": on_p99,
        "p50_overhead": _paired_overhead("p50"),
        "p99_overhead": _paired_overhead("p99"),
    }
    print(
        f"  recorder OFF: p50 {off_p50:6.2f}ms  p99 {off_p99:6.2f}ms\n"
        f"  recorder ON : p50 {on_p50:6.2f}ms  p99 {on_p99:6.2f}ms  "
        f"(p50 {row['p50_overhead'] * 100:+.2f}%, "
        f"p99 {row['p99_overhead'] * 100:+.2f}%)"
    )
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=256,
                    help="closed-loop submissions per concurrency level")
    ap.add_argument("--clients", default="1,4,8,16",
                    help="comma-separated concurrency levels (first is the "
                         "batch-1 baseline)")
    ap.add_argument("--quick", action="store_true",
                    help="small request counts (CI smoke)")
    ap.add_argument("--out", default="BENCH_serve.json")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail if batched/batch-1 throughput is below this")
    ap.add_argument("--fleet-replicas", default="1,2,4,8",
                    help="comma-separated fleet sizes for the replica sweep")
    ap.add_argument("--min-fleet-scaling", type=float, default=0.0,
                    help="fail if 4-replica throughput / 1-process "
                         "throughput is below this (only meaningful on "
                         "multi-core runners; bitwise identity and the "
                         "zero-copy hot path are always enforced)")
    ap.add_argument("--max-recorder-overhead", type=float, default=0.0,
                    help="fail if the flight-recorder-enabled p50 exceeds "
                         "the disabled p50 by more than this fraction "
                         "(acceptance bar: 0.02 = 2%%)")
    args = ap.parse_args(argv)

    requests = 64 if args.quick else args.requests
    client_counts = [int(c) for c in args.clients.split(",")]
    bitwise_n = 8 if args.quick else 16
    replica_counts = [int(c) for c in args.fleet_replicas.split(",")]
    fleet_requests = 48 if args.quick else min(requests, 128)

    fast_cfg = ServeConfig()  # fast engine: the throughput path
    # boot bench: big enough that the dryrun outweighs artifact loading
    blocked_cfg = ServeConfig(
        engine="blocked", execution_tier="compiled",
        input_shape=(16, 8, 8) if args.quick else (16, 16, 16),
        buckets=(1, 2) if args.quick else (1, 2, 4, 8, 16),
    )

    print("batching throughput (fast engine):")
    batching = bench_batching(fast_cfg, requests, client_counts)
    print(
        f"  => {batching['speedup']:.1f}x over no-batching at "
        f"{batching['clients']} clients "
        f"(p99 {batching['batch1_p99_ms']:.2f} -> "
        f"{batching['batched_p99_ms']:.2f} ms)"
    )

    bitwise = bench_bitwise(fast_cfg, bitwise_n)
    print(f"bitwise identity over {bitwise['requests']} concurrent "
          f"requests: exact={bitwise['exact']}")

    print("boot latency (blocked engine):")
    boot = bench_boot(blocked_cfg)
    print(
        f"  cold {boot['cold_boot_s'] * 1e3:7.1f}ms  "
        f"warm {boot['warm_boot_s'] * 1e3:7.1f}ms  "
        f"({boot['speedup']:.1f}x, {boot['stream_entries']} stream entries)"
    )

    print("execution tiers (blocked engine, per-bucket predict p50):")
    tier_buckets = [2] if args.quick else [8, 16]
    tiers = bench_tiers(blocked_cfg, tier_buckets,
                        repeats=5 if args.quick else 20)

    print("fleet sweep (fast engine, closed loop):")
    fleet = bench_fleet(
        fast_cfg, fleet_requests, clients=client_counts[-1],
        replica_counts=replica_counts, sample_n=bitwise_n,
    )
    print(
        f"  => {fleet['host']['usable_cpus']} usable cores; scaling at 4 "
        f"replicas: {fleet['scaling_at_4']}"
        if fleet["scaling_at_4"] is not None
        else f"  => {fleet['host']['usable_cpus']} usable cores"
    )

    print("fleet warm boot (blocked engine, shared bundle):")
    fleet_boot = bench_fleet_boot(
        blocked_cfg,
        [n for n in replica_counts if n <= 4] if args.quick
        else replica_counts,
    )

    print("flight-recorder overhead (fast engine, closed loop):")
    # moderate concurrency: at heavy oversubscription on small runners
    # scheduler noise is 5-10x the effect being measured
    recorder = bench_recorder_overhead(
        fast_cfg, 64 if args.quick else min(requests, 128),
        clients=min(4, client_counts[-1]),
        rounds=3 if args.quick else 5,
    )

    import os

    from repro.arch.machine import machine_by_name

    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = os.cpu_count() or 1
    report = {
        "bench": "serve",
        "config": {
            "model": fast_cfg.model,
            "width": fast_cfg.width,
            "input_shape": list(fast_cfg.input_shape),
            "buckets": list(fast_cfg.buckets),
            "requests": requests,
        },
        "machine": fast_cfg.machine,
        "machine_fingerprint": machine_by_name(fast_cfg.machine).fingerprint(),
        "host": {"cpus": os.cpu_count(), "usable_cpus": usable},
        "batching": batching,
        "bitwise": bitwise,
        "boot": boot,
        "tiers": tiers,
        "fleet": fleet,
        "fleet_boot": fleet_boot,
        "recorder": recorder,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"-> {args.out}")

    if not bitwise["exact"]:
        print("FAIL: batched outputs are not bitwise-identical",
              file=sys.stderr)
        return 1
    if not all(r["exact"] for r in tiers["buckets"]):
        print("FAIL: stream_compiled predictions are not bitwise-"
              "identical to compiled", file=sys.stderr)
        return 1
    if batching["speedup"] < args.min_speedup:
        print(
            f"FAIL: batching speedup {batching['speedup']:.2f}x < "
            f"required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup and not batching["p99_improved"]:
        print(
            f"FAIL: batched p99 {batching['batched_p99_ms']:.2f}ms worse "
            f"than no-batching {batching['batch1_p99_ms']:.2f}ms",
            file=sys.stderr,
        )
        return 1
    if not fleet["exact"]:
        print("FAIL: fleet responses are not bitwise-identical to "
              "direct predict", file=sys.stderr)
        return 1
    if not fleet["zero_copy"]:
        print("FAIL: router copied tensor bytes on the hot path",
              file=sys.stderr)
        return 1
    if args.min_fleet_scaling:
        if fleet["scaling_at_4"] is None:
            print("FAIL: --min-fleet-scaling set but 4 is not in "
                  "--fleet-replicas", file=sys.stderr)
            return 1
        if fleet["scaling_at_4"] < args.min_fleet_scaling:
            print(
                f"FAIL: fleet scaling at 4 replicas "
                f"{fleet['scaling_at_4']:.2f}x < required "
                f"{args.min_fleet_scaling}x "
                f"({fleet['host']['usable_cpus']} usable cores)",
                file=sys.stderr,
            )
            return 1
        if not fleet["p99_at_4_ok"]:
            at4 = next(
                r for r in fleet["levels"] if r["replicas"] == 4
            )
            print(
                f"FAIL: 4-replica p99 "
                f"{at4['latency_ms']['p99']:.2f}ms worse than 1-process "
                f"baseline {fleet['baseline_p99_ms']:.2f}ms",
                file=sys.stderr,
            )
            return 1
    if (args.max_recorder_overhead
            and recorder["p50_overhead"] > args.max_recorder_overhead):
        print(
            f"FAIL: flight-recorder p50 overhead "
            f"{recorder['p50_overhead'] * 100:.2f}% > allowed "
            f"{args.max_recorder_overhead * 100:.2f}% "
            f"({recorder['disabled_p50_ms']:.2f}ms -> "
            f"{recorder['enabled_p50_ms']:.2f}ms)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
