"""Serving benchmark: dynamic batching vs batch-1, cold vs warm boot.

Three measurements, one JSON report:

1. **Batching throughput** -- identical closed-loop load against two
   servers: one with dynamic batching disabled (``buckets=(1,)``, every
   request runs alone) and one with the full bucket ladder.  The
   acceptance bar is >= 3x the batch-1 throughput at equal-or-better
   p99 latency, with outputs bitwise identical to unbatched
   ``InferenceSession.predict``.
2. **Bitwise identity** -- every response from the concurrent run is
   compared against the direct batch-1 reference.
3. **Boot latency** -- blocked-engine cold boot (dryrun records every
   stream) vs warm boot from a saved stream artifact (dryrun skipped).
   Both boots run in the same process *after* a throwaway boot, so the
   JIT kernel cache is hot and the delta isolates the dryrun itself.
4. **Execution tiers** -- per-bucket blocked-engine predict latency,
   ``compiled`` vs ``stream_compiled`` (whole-segment closure replay),
   with bitwise-identical outputs required.

Run as a plain script (not pytest -- the timing loop is its own harness)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time

import numpy as np

from repro.gxm.inference import InferenceSession
from repro.serve import InferenceServer, ServeConfig, run_closed_loop


def _closed_sweep(cfg: ServeConfig, requests: int, client_counts) -> list:
    server = InferenceServer(cfg)
    server.start()
    try:
        levels = []
        for clients in client_counts:
            rep = run_closed_loop(
                server, clients=clients, requests=requests, seed=clients
            )
            levels.append(
                {
                    "clients": clients,
                    "completed": rep.completed,
                    "throughput_rps": rep.throughput_rps,
                    "latency_ms": rep.latency_ms,
                }
            )
            print(
                f"  clients {clients:>3}: {rep.throughput_rps:8.0f} req/s  "
                f"p50 {rep.latency_ms['p50']:6.2f}ms  "
                f"p99 {rep.latency_ms['p99']:6.2f}ms"
            )
    finally:
        server.stop()
    return levels


def bench_batching(cfg: ServeConfig, requests: int, client_counts) -> dict:
    """Same closed-loop load, batching off (buckets=(1,)) vs on."""
    from dataclasses import replace

    print("  batching OFF (buckets=(1,)):")
    off = _closed_sweep(replace(cfg, buckets=(1,)), requests, client_counts)
    print("  batching ON:")
    on = _closed_sweep(cfg, requests, client_counts)
    # compare at the highest concurrency -- the load batching exists for
    base, best = off[-1], on[-1]
    return {
        "nobatch_levels": off,
        "batched_levels": on,
        "clients": base["clients"],
        "batch1_rps": base["throughput_rps"],
        "batched_rps": best["throughput_rps"],
        "speedup": best["throughput_rps"] / base["throughput_rps"],
        "batch1_p99_ms": base["latency_ms"]["p99"],
        "batched_p99_ms": best["latency_ms"]["p99"],
        "p99_improved": (
            best["latency_ms"]["p99"] <= base["latency_ms"]["p99"]
        ),
    }


def bench_bitwise(cfg: ServeConfig, n: int) -> dict:
    """Concurrently served outputs vs direct batch-1 predictions."""
    import threading

    rng = np.random.default_rng(11)
    xs = rng.standard_normal((n, *cfg.input_shape)).astype(np.float32)
    with InferenceSession(cfg.build_etg(1)) as sess:
        refs = [sess.predict(x[None])[0].copy() for x in xs]
    server = InferenceServer(cfg)
    server.start()
    try:
        outs = [None] * n
        barrier = threading.Barrier(n)

        def client(i):
            barrier.wait()
            outs[i] = server.predict(xs[i])

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.stop()
    exact = all(
        np.array_equal(
            out.view(np.uint32), ref.view(np.uint32)
        )
        for out, ref in zip(outs, refs)
    )
    return {"requests": n, "exact": exact}


def bench_boot(cfg: ServeConfig) -> dict:
    """Cold (dryrun) vs warm (stream replay) blocked-engine boot."""
    # throwaway boot so codegen/compilation is cached for both timed boots
    throwaway = InferenceServer(cfg)
    throwaway.start()
    buf = io.BytesIO()
    entries = throwaway.save_streams_artifact(buf)
    throwaway.stop()

    t0 = time.perf_counter()
    cold = InferenceServer(cfg)
    cold_boot = cold.start()
    cold_s = time.perf_counter() - t0
    cold.stop()

    buf.seek(0)
    t0 = time.perf_counter()
    warm = InferenceServer(cfg)
    warm_boot = warm.start(streams_artifact=buf)
    warm_s = time.perf_counter() - t0
    warm.stop()

    assert not cold_boot["warm_buckets"] and not warm_boot["cold_buckets"]
    return {
        "engine": cfg.engine,
        "buckets": list(cfg.buckets),
        "stream_entries": entries,
        "cold_boot_s": cold_s,
        "warm_boot_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def bench_tiers(cfg: ServeConfig, buckets, repeats: int) -> dict:
    """Per-bucket predict latency: compiled vs stream_compiled replay on
    the same blocked engine (same streams, same JIT'ed variants)."""
    rng = np.random.default_rng(5)
    rows = []
    for bucket in buckets:
        x = rng.standard_normal(
            (bucket, *cfg.input_shape)
        ).astype(np.float32)
        row = {"bucket": bucket}
        outs = {}
        for tier in ("compiled", "stream_compiled"):
            etg = cfg.build_etg(bucket, execution_tier=tier)
            with InferenceSession(etg) as sess:
                sess.predict(x)  # warm up: plan building / stream lowering
                times = []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    out = sess.predict(x)
                    times.append(time.perf_counter() - t0)
                outs[tier] = out.copy()
            times.sort()
            row[f"{tier}_p50_ms"] = times[len(times) // 2] * 1e3
        row["exact"] = bool(
            np.array_equal(
                outs["compiled"].view(np.uint32),
                outs["stream_compiled"].view(np.uint32),
            )
        )
        row["speedup"] = (
            row["compiled_p50_ms"] / row["stream_compiled_p50_ms"]
        )
        rows.append(row)
        print(
            f"  bucket {bucket:>2}: compiled p50 "
            f"{row['compiled_p50_ms']:7.2f}ms  stream_compiled p50 "
            f"{row['stream_compiled_p50_ms']:7.2f}ms  "
            f"({row['speedup']:.2f}x, exact={row['exact']})"
        )
    return {"repeats": repeats, "buckets": rows}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=256,
                    help="closed-loop submissions per concurrency level")
    ap.add_argument("--clients", default="1,4,8,16",
                    help="comma-separated concurrency levels (first is the "
                         "batch-1 baseline)")
    ap.add_argument("--quick", action="store_true",
                    help="small request counts (CI smoke)")
    ap.add_argument("--out", default="BENCH_serve.json")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail if batched/batch-1 throughput is below this")
    args = ap.parse_args(argv)

    requests = 64 if args.quick else args.requests
    client_counts = [int(c) for c in args.clients.split(",")]
    bitwise_n = 8 if args.quick else 16

    fast_cfg = ServeConfig()  # fast engine: the throughput path
    # boot bench: big enough that the dryrun outweighs artifact loading
    blocked_cfg = ServeConfig(
        engine="blocked", execution_tier="compiled",
        input_shape=(16, 8, 8) if args.quick else (16, 16, 16),
        buckets=(1, 2) if args.quick else (1, 2, 4, 8, 16),
    )

    print("batching throughput (fast engine):")
    batching = bench_batching(fast_cfg, requests, client_counts)
    print(
        f"  => {batching['speedup']:.1f}x over no-batching at "
        f"{batching['clients']} clients "
        f"(p99 {batching['batch1_p99_ms']:.2f} -> "
        f"{batching['batched_p99_ms']:.2f} ms)"
    )

    bitwise = bench_bitwise(fast_cfg, bitwise_n)
    print(f"bitwise identity over {bitwise['requests']} concurrent "
          f"requests: exact={bitwise['exact']}")

    print("boot latency (blocked engine):")
    boot = bench_boot(blocked_cfg)
    print(
        f"  cold {boot['cold_boot_s'] * 1e3:7.1f}ms  "
        f"warm {boot['warm_boot_s'] * 1e3:7.1f}ms  "
        f"({boot['speedup']:.1f}x, {boot['stream_entries']} stream entries)"
    )

    print("execution tiers (blocked engine, per-bucket predict p50):")
    tier_buckets = [2] if args.quick else [8, 16]
    tiers = bench_tiers(blocked_cfg, tier_buckets,
                        repeats=5 if args.quick else 20)

    report = {
        "bench": "serve",
        "config": {
            "model": fast_cfg.model,
            "width": fast_cfg.width,
            "input_shape": list(fast_cfg.input_shape),
            "buckets": list(fast_cfg.buckets),
            "requests": requests,
        },
        "batching": batching,
        "bitwise": bitwise,
        "boot": boot,
        "tiers": tiers,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"-> {args.out}")

    if not bitwise["exact"]:
        print("FAIL: batched outputs are not bitwise-identical",
              file=sys.stderr)
        return 1
    if not all(r["exact"] for r in tiers["buckets"]):
        print("FAIL: stream_compiled predictions are not bitwise-"
              "identical to compiled", file=sys.stderr)
        return 1
    if batching["speedup"] < args.min_speedup:
        print(
            f"FAIL: batching speedup {batching['speedup']:.2f}x < "
            f"required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup and not batching["p99_improved"]:
        print(
            f"FAIL: batched p99 {batching['batched_p99_ms']:.2f}ms worse "
            f"than no-batching {batching['batch1_p99_ms']:.2f}ms",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
