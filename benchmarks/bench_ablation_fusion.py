"""Ablation: layer fusion (section II-G).

Fused conv+ReLU(+Bias) applies the post-op while the output block is hot in
cache; un-fused execution pays a full read+write pass over the output per
operator.  The benefit is the avoided bandwidth, so it is largest on the
layers with big outputs relative to their flops.
"""

from conftest import emit, series_row

from repro.arch.machine import SKX
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel, combine_parts


def compute():
    model = ConvPerfModel(SKX)
    fused_g, unfused_g, benefit = [], [], []
    for lid, p in resnet50_layers(28):
        fused = model.estimate_forward(p, fused=("bias", "relu"))
        plain = model.estimate_forward(p)
        # un-fused: two extra element-wise passes over the output, each a
        # read+write against the output's residency level
        out_bytes = p.N * p.K * p.P * p.Q * 4
        if out_bytes <= 0.75 * SKX.llc_bytes:
            per_pass = 2 * out_bytes / (SKX.llc_bw * model.threads)
        else:
            per_pass = out_bytes / SKX.mem_read_bw + out_bytes / SKX.mem_write_bw
        unfused_t = plain.time_s + 2 * per_pass
        fused_g.append(p.flops / fused.time_s / 1e9)
        unfused_g.append(p.flops / unfused_t / 1e9)
        benefit.append(unfused_t / fused.time_s)
    return fused_g, unfused_g, benefit


def test_fusion_benefit(benchmark):
    fused_g, unfused_g, benefit = benchmark(compute)
    ids = list(range(1, 21))
    emit(
        "Ablation: conv+Bias+ReLU fusion (SKX, effective GFLOPS)",
        [series_row("layer", ids, "7d"),
         series_row("fused", fused_g),
         series_row("unfused", unfused_g),
         series_row("speedup", benefit, "7.2f")],
    )
    assert max(benefit) > 1.10  # bandwidth-bound layers gain the most
    # fusion never costs measurable compute (a few VMAX/VADD per block)
    assert min(benefit) > 0.98
