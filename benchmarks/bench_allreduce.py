"""All-reduce benchmark: overlapped ring/tree vs the blocking root fold.

One sweep, one JSON report: data-parallel training of the mini-ResNet
at 2/4/8 worker processes under each ``--allreduce`` mode, measuring
per-step wall-clock at the root.  ``root`` is the blocking baseline
(scatter weights, gather gradients, fold at the root); ``ring`` and
``tree`` stream gradient buckets between workers layer-by-layer while
the backward pass is still producing them, so the communication the
root baseline serializes is overlapped away.

Every (mode, workers) cell re-checks the headline invariant -- ring
and tree final weights are *bitwise identical* to the root fold over
the same batches -- and records the workers' own overlap accounting
(``collective.overlap_ms`` vs ``collective.exposed_ms``).

Scaling is core-bound: ``workers`` processes plus the root must fit on
the host for overlap to show up as wall-clock, so the report records
``host.cpus`` and the ``--min-allreduce-scaling`` gate (ring speedup
over root at 4 workers) skips with a notice on low-core runners
instead of failing them.

Run as a plain script (not pytest -- the timing loop is its own harness)::

    PYTHONPATH=src python benchmarks/bench_allreduce.py --quick
    PYTHONPATH=src python benchmarks/bench_allreduce.py --out BENCH_allreduce.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.arch.machine import SKX
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.models.resnet50 import resnet_mini_topology
from repro.obs.metrics import get_metrics

SHAPE = (3, 12, 12)
CLASSES = 8
#: the scaling gate needs this many workers' cell in the sweep
GATE_WORKERS = 4
#: below this many usable cores the gate is noise: skip with a notice
GATE_MIN_CPUS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _topology(width: int):
    # comm-heavy on purpose: wide layers fatten the gradient stream the
    # root baseline has to serialize through one pipe
    return resnet_mini_topology(num_classes=CLASSES, width=width)


def bench_cell(mode: str, nodes: int, width: int, steps: int,
               batch_per_worker: int) -> dict:
    """Train ``steps`` batches under ``mode``; per-step wall-clock is
    the median of the steady-state steps (the first is warmup: worker
    spawn, mesh build, first-touch)."""
    ds = SyntheticImageDataset(
        n=batch_per_worker * nodes * steps, num_classes=CLASSES,
        shape=SHAPE, seed=5,
    )
    get_metrics().clear()
    t = ProcessParallelTrainer(
        _topology(width), (batch_per_worker, *SHAPE), nodes=nodes,
        seed=0, allreduce=mode, step_timeout=120.0,
    )
    try:
        wall_ms = []
        for x, labels in ds.batches(batch_per_worker * nodes, 1,
                                    seed=t.shuffle_seed):
            t0 = time.perf_counter()
            t.train_step(x, labels)
            wall_ms.append((time.perf_counter() - t0) * 1e3)
        weights = [p.copy() for p in t.root.params()]
        losses = list(t.metrics.losses)
    finally:
        t.close()
    m = get_metrics()
    dists = m.distributions()
    steady = wall_ms[1:] or wall_ms
    return {
        "mode": mode,
        "workers": nodes,
        "steps": len(wall_ms),
        "step_ms_median": float(np.median(steady)),
        "step_ms_first": wall_ms[0],
        "grad_mb_per_step": (
            m.value("collective.bytes") / max(len(wall_ms), 1) / 2**20
            if mode != "root" else None
        ),
        # per-(worker, step) means: comm hidden under backward vs paid
        # after the last bucket was cut
        "overlap_ms_mean": dists.get("collective.overlap_ms",
                                     {}).get("mean", 0.0),
        "exposed_ms_mean": dists.get("collective.exposed_ms",
                                     {}).get("mean", 0.0),
        "_weights": weights,
        "_losses": losses,
    }


def bench_sweep(worker_counts, modes, width: int, steps: int,
                batch_per_worker: int) -> dict:
    rows = []
    bitwise_ok = True
    for nodes in worker_counts:
        ref = None
        for mode in modes:
            cell = bench_cell(mode, nodes, width, steps, batch_per_worker)
            if mode == "root":
                ref = cell
            elif ref is not None:
                exact = (
                    cell["_losses"] == ref["_losses"]
                    and all(np.array_equal(a, b) for a, b in
                            zip(cell["_weights"], ref["_weights"]))
                )
                cell["bitwise_vs_root"] = exact
                if mode == "ring":
                    # ring's chain fold is rank-order, exactly the root
                    # fold: bitwise identity is the acceptance bar
                    bitwise_ok = bitwise_ok and exact
                else:
                    # the binomial tree legitimately sums in a different
                    # order; require numerical agreement, not bit equality
                    close = all(np.allclose(a, b, rtol=1e-4, atol=1e-6)
                                for a, b in zip(cell["_weights"],
                                                ref["_weights"]))
                    cell["allclose_vs_root"] = close
                    bitwise_ok = bitwise_ok and close
            if ref is not None and mode != "root":
                ratio = ref["step_ms_median"] / cell["step_ms_median"]
                speed = f"  ({ratio:.2f}x vs root)"
            else:
                speed = ""
            print(f"  {mode:>4} x{nodes}: "
                  f"{cell['step_ms_median']:8.1f} ms/step{speed}")
            rows.append(cell)
    for row in rows:
        row.pop("_weights")
        row.pop("_losses")
    by = {(r["mode"], r["workers"]): r for r in rows}
    gate_cell = by.get(("ring", GATE_WORKERS))
    gate_base = by.get(("root", GATE_WORKERS))
    return {
        "host": {"cpus": os.cpu_count(), "usable_cpus": _usable_cpus()},
        "machine_fingerprint": SKX.fingerprint(),
        "width": width,
        "batch_per_worker": batch_per_worker,
        "rows": rows,
        "bitwise_ok": bitwise_ok,
        "ring_speedup_at_4": (
            gate_base["step_ms_median"] / gate_cell["step_ms_median"]
            if gate_cell and gate_base else None
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", default="2,4,8",
                    help="comma-separated worker counts")
    ap.add_argument("--modes", default="root,ring,tree",
                    help="comma-separated all-reduce modes (root first: "
                         "it is the baseline the others compare against)")
    ap.add_argument("--steps", type=int, default=6,
                    help="training steps per cell (first is warmup)")
    ap.add_argument("--width", type=int, default=24,
                    help="mini-ResNet width (wider = heavier gradients)")
    ap.add_argument("--batch", type=int, default=2,
                    help="per-worker batch size")
    ap.add_argument("--quick", action="store_true",
                    help="small sweep (CI smoke): 2/4 workers, 4 steps")
    ap.add_argument("--out", default="BENCH_allreduce.json")
    ap.add_argument("--min-allreduce-scaling", type=float, default=0.0,
                    help="fail if ring/root per-step speedup at 4 workers "
                         "is below this -- skipped with a notice when the "
                         f"host has fewer than {GATE_MIN_CPUS} usable "
                         "cores (bitwise identity is always enforced)")
    args = ap.parse_args(argv)

    worker_counts = [int(c) for c in args.workers.split(",")]
    modes = [m.strip() for m in args.modes.split(",")]
    steps = 4 if args.quick else args.steps
    if args.quick:
        worker_counts = [c for c in worker_counts if c <= 4] or [2]

    print(f"all-reduce sweep: modes={modes} workers={worker_counts} "
          f"steps={steps} width={args.width} "
          f"({_usable_cpus()} usable cores)")
    report = bench_sweep(worker_counts, modes, args.width, steps,
                         args.batch)
    report["args"] = {
        "workers": worker_counts, "modes": modes, "steps": steps,
        "quick": args.quick,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"wrote {args.out}")

    if not report["bitwise_ok"]:
        print("FAIL: ring/tree weights are not bitwise-identical to the "
              "root fold", file=sys.stderr)
        return 1
    if args.min_allreduce_scaling:
        cpus = report["host"]["usable_cpus"]
        speedup = report["ring_speedup_at_4"]
        if cpus < GATE_MIN_CPUS:
            print(f"NOTICE: --min-allreduce-scaling skipped: only {cpus} "
                  f"usable cores (< {GATE_MIN_CPUS}); overlap cannot show "
                  f"up as wall-clock on this host")
        elif speedup is None:
            print("FAIL: --min-allreduce-scaling set but the sweep has "
                  f"no ring+root cells at {GATE_WORKERS} workers",
                  file=sys.stderr)
            return 1
        elif speedup < args.min_allreduce_scaling:
            print(f"FAIL: ring speedup at {GATE_WORKERS} workers "
                  f"{speedup:.2f}x < required "
                  f"{args.min_allreduce_scaling}x ({cpus} usable cores)",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
