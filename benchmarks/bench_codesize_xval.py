"""Ablation/validation benches for the JIT substrate itself.

* **Code size**: the section-I "combinatorial explosion" quantified -- the
  encoded bytes of every kernel variant the ResNet-50 forward pass needs on
  SKX, with and without fusion variants.
* **Scheduler cross-validation**: the analytic timing model vs the
  cycle-level scheduling simulator over the Table-I kernel family; the two
  independent mechanisms must agree within a band.
"""

import statistics

from conftest import emit

from repro.arch.machine import KNM, SKX
from repro.jit.codegen import generate_conv_kernel
from repro.jit.encoding import encode_program
from repro.jit.scheduler import CycleSimulator
from repro.jit.timing import time_kernel
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from repro.types import DType


def build_variants():
    """Every (layer, fused?) forward kernel variant for SKX."""
    model = ConvPerfModel(SKX)
    progs = []
    for lid, p in resnet50_layers(28):
        plan = model._plan(p, DType.F32, "thiswork")
        for fused in ((), ("bias", "relu")):
            desc = model._fwd_desc(p, plan, DType.F32, "thiswork", fused)
            progs.append(generate_conv_kernel(desc))
    return progs


def test_code_size(benchmark):
    progs = benchmark(build_variants)
    sizes = [len(encode_program(p)) for p in progs]
    total = sum(sizes)
    emit(
        "JIT code size: ResNet-50 SKX fwd variants (plain + fused)",
        [f"variants: {len(progs)}",
         f"total encoded size: {total / 1024:.1f} KiB "
         f"(avg {total / len(progs) / 1024:.2f} KiB/variant)",
         f"largest: {max(sizes) / 1024:.1f} KiB",
         "-> far beyond static compilation budgets once every fusion "
         "combination is needed: the section-I argument for JIT-ing"],
    )
    assert len(progs) == 40
    # fusion variants cost only an epilogue: <15% size growth on average
    plain = sizes[0::2]
    fused = sizes[1::2]
    growth = [f / p for p, f in zip(plain, fused)]
    assert statistics.mean(growth) < 1.15


def test_scheduler_cross_validation(benchmark):
    def xval():
        rows = []
        for machine, nb in ((SKX, 28), (KNM, 70)):
            model = ConvPerfModel(machine)
            sim = CycleSimulator(machine)
            for lid, p in resnet50_layers(nb):
                if lid % 4 != 0:  # a representative quarter of the table
                    continue
                plan = model._plan(p, DType.F32, "thiswork")
                desc = model._fwd_desc(p, plan, DType.F32, "thiswork")
                prog = generate_conv_kernel(desc)
                analytic = time_kernel(prog, machine, call_overhead=0.0)
                s = sim.simulate(prog)
                rows.append(
                    (machine.name, lid, analytic.cycles, s.cycles,
                     s.cycles / analytic.cycles)
                )
        return rows

    rows = benchmark(xval)
    emit(
        "Analytic timing vs cycle-level scheduler (kernel cycles)",
        [f"{m:>4} layer {lid:>2}: analytic {a:9.0f}  sim {s:9.0f}  "
         f"ratio {r:4.2f}" for m, lid, a, s, r in rows],
    )
    ratios = [r for *_, r in rows]
    assert all(0.7 <= r <= 1.4 for r in ratios)
    assert 0.9 <= statistics.mean(ratios) <= 1.25
