"""Ablation: register blocking sweep (section II-B).

Sweeps RB_Q for a 3x3 kernel on SKX and shows FMA-latency exposure
vanishing once RB_P*RB_Q passes fma_latency*fma_ports -- the reason the
paper blocks output pixels into registers at all.
"""

from conftest import emit, series_row

from repro.arch.machine import SKX
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.timing import time_kernel


def sweep():
    effs = []
    qs = [1, 2, 4, 6, 8, 12, 16, 22, 28]
    for rb_q in qs:
        desc = ConvKernelDesc(
            vlen=16, rb_p=1, rb_q=rb_q, R=3, S=3, stride=1,
            i_strides=(100000, 1000, 16),
            w_strides=(100000, 800, 256, 16),
            o_strides=(900, 16),
            fused_memop=True,
        )
        t = time_kernel(generate_conv_kernel(desc), SKX)
        effs.append((rb_q, t.efficiency(SKX), t.bottleneck))
    return qs, effs


def test_register_blocking_sweep(benchmark):
    qs, effs = benchmark(sweep)
    emit(
        "Ablation: RB_Q sweep, 3x3 kernel on SKX",
        [series_row("RB_Q", qs, "7d"),
         series_row("eff", [100 * e for _, e, _ in effs], "7.1f"),
         series_row("bound", [b[:6] for _, _, b in effs], ">7s")],
    )
    by_q = {q: (e, b) for q, e, b in effs}
    target = SKX.fma_ports * SKX.fma_latency
    # below the latency window: exposed; above: compute-bound and flat
    assert by_q[1][1] == "fma_latency"
    assert by_q[1][0] < 0.25
    assert by_q[28][0] > 0.8
    assert by_q[12][0] > 3 * by_q[1][0]
    # monotone non-decreasing until saturation
    es = [e for _, e, _ in effs]
    assert all(b >= a - 1e-9 for a, b in zip(es, es[1:]))
