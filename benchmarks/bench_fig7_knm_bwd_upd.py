"""Figure 7: ResNet-50 (a) backward and (b) weight-update on KNM.

Expected shape: bwd ~ fwd; upd efficiency in the 20-55% range (no shared
LLC to absorb the gradient reduction, plus the 4FMA layout transpose --
section III-B).
"""

from conftest import emit, series_row

from repro.arch.machine import KNM
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def compute_fig7():
    model = ConvPerfModel(KNM)
    rows = {k: [] for k in ("bwd", "upd", "bwd_eff", "upd_eff", "fwd_eff")}
    for lid, p in resnet50_layers(70):
        rows["fwd_eff"].append(model.estimate_forward(p).efficiency)
        bw = model.estimate_backward(p)
        up = model.estimate_update(p)
        rows["bwd"].append(bw.gflops)
        rows["bwd_eff"].append(100 * bw.efficiency)
        rows["upd"].append(up.gflops)
        rows["upd_eff"].append(100 * up.efficiency)
    return rows


def test_fig7(benchmark):
    rows = benchmark(compute_fig7)
    ids = list(range(1, 21))
    emit(
        "Fig. 7a: ResNet-50 bwd, KNM (GFLOPS/layer)",
        [series_row("layer", ids, "7d"), series_row("bwd", rows["bwd"]),
         series_row("% peak", rows["bwd_eff"], "7.1f")],
    )
    emit(
        "Fig. 7b: ResNet-50 upd, KNM (GFLOPS/layer)",
        [series_row("layer", ids, "7d"), series_row("upd", rows["upd"]),
         series_row("% peak", rows["upd_eff"], "7.1f")],
    )
    # upd range 20-55% of peak (section III-B; we allow a little slack)
    effs = rows["upd_eff"]
    assert min(effs) >= 10
    assert max(effs) <= 60
    # and strictly below forward on the big 3x3 layers
    for i in (4, 8, 13, 18):
        assert effs[i - 1] < 100 * rows["fwd_eff"][i - 1]
