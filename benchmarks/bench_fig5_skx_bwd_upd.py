"""Figure 5: ResNet-50 (a) backward and (b) weight-update on SKX.

This work vs MKL-DNN.  Expected shape: bwd ~ fwd (duality) with stride-2
dips; upd efficiency ~10-15% below fwd (weight-reduction cost).
"""

import statistics

from conftest import emit, series_row

from repro.arch.machine import SKX
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def compute_fig5():
    model = ConvPerfModel(SKX)
    out = {k: [] for k in ("fwd", "bwd", "bwd_mkl", "upd", "upd_mkl",
                           "bwd_eff", "upd_eff")}
    for lid, p in resnet50_layers(28):
        fw = model.estimate_forward(p)
        bw = model.estimate_backward(p)
        up = model.estimate_update(p)
        out["fwd"].append(fw.efficiency)
        out["bwd"].append(bw.gflops)
        out["bwd_eff"].append(100 * bw.efficiency)
        out["upd"].append(up.gflops)
        out["upd_eff"].append(100 * up.efficiency)
        out["bwd_mkl"].append(model.estimate_backward(p, impl="mkl").gflops)
        out["upd_mkl"].append(model.estimate_update(p, impl="mkl").gflops)
    return out


def test_fig5(benchmark):
    rows = benchmark(compute_fig5)
    ids = list(range(1, 21))
    lines = [series_row("layer", ids, "7d"),
             series_row("bwd", rows["bwd"]),
             series_row("bwd-mkl", rows["bwd_mkl"]),
             series_row("% peak", rows["bwd_eff"], "7.1f")]
    emit("Fig. 5a: ResNet-50 bwd, SKX (GFLOPS/layer)", lines)
    lines = [series_row("layer", ids, "7d"),
             series_row("upd", rows["upd"]),
             series_row("upd-mkl", rows["upd_mkl"]),
             series_row("% peak", rows["upd_eff"], "7.1f")]
    emit("Fig. 5b: ResNet-50 upd, SKX (GFLOPS/layer)", lines)

    # bwd ~ fwd for stride-1 layers (duality, section III-A)
    layers = resnet50_layers(28)
    for (lid, p), f, b in zip(layers, rows["fwd"], rows["bwd_eff"]):
        if p.stride == 1:
            assert abs(100 * f - b) < 25
    # upd sits below fwd on the compute-bound layers
    gaps = [
        100 * f - u
        for (lid, p), f, u in zip(layers, rows["fwd"], rows["upd_eff"])
        if lid in (4, 8, 13, 18)
    ]
    assert -8 <= statistics.mean(gaps) <= 25
