"""Execution-tier benchmark: compiled numpy closures vs the µop interpreter.

Measures wall time of the forward engine on Table-1 ResNet-50 layers under
the ``interpret``, ``compiled`` and ``stream_compiled`` execution tiers
(same streams, same µop programs), asserts the outputs are *bitwise*
identical, and records the per-layer and geometric-mean speedups to a JSON
report.  ``speedup`` is interpret/compiled; ``stream_speedup`` is
compiled/stream_compiled (how much whole-segment closure replay saves on
top of per-call compiled dispatch).

Run as a plain script (not pytest -- the timing loop is its own harness)::

    PYTHONPATH=src python benchmarks/bench_exec_tiers.py --quick
    PYTHONPATH=src python benchmarks/bench_exec_tiers.py --out BENCH_exec_tiers.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

import numpy as np

from repro.arch.machine import KNM, SKX
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.models.resnet50 import resnet50_layer
from repro.quant.qconv_engine import QuantConvForward
from repro.quant.qtensor import quantize
from repro.tensor.blocked import BlockedTensor, block_activations, block_weights

#: Table-1 ids spanning the shape space: early wide-spatial, 1x1 projections,
#: strided 3x3, and the deep narrow-spatial tail
DEFAULT_LAYERS = [1, 2, 4, 8, 12, 16, 20]


def _time_call(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_f32_layer(layer_id: int, p: ConvParams, repeats: int) -> dict:
    rng = np.random.default_rng(layer_id)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
    results = {"layer": layer_id, "dtype": "f32", "params": p.describe()}
    outs = {}
    for tier in ("compiled", "stream_compiled", "interpret"):
        eng = DirectConvForward(p, machine=SKX, execution_tier=tier)
        bx = block_activations(
            x, eng.plan.vlen, pad_h=p.pad_h, pad_w=p.pad_w
        )
        bw = block_weights(w, eng.plan.vlen)
        out = BlockedTensor(
            np.zeros(eng.out_layout.size, dtype=np.float32), eng.out_layout
        )

        def run(eng=eng, bx=bx, bw=bw, out=out):
            out.zero_()
            eng(bx, bw, out)

        if tier != "interpret":
            run()  # amortize plan building / stream lowering up front
        results[f"{tier}_s"] = _time_call(run, repeats)
        outs[tier] = out.data.copy()
    results["exact"] = bool(
        np.array_equal(
            outs["compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
        and np.array_equal(
            outs["stream_compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
    )
    results["speedup"] = results["interpret_s"] / results["compiled_s"]
    results["stream_speedup"] = (
        results["compiled_s"] / results["stream_compiled_s"]
    )
    return results


def bench_q16_layer(layer_id: int, p: ConvParams, repeats: int) -> dict:
    rng = np.random.default_rng(layer_id)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32) * 0.3
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32) * 0.3
    qx, qw = quantize(x), quantize(w)
    results = {"layer": layer_id, "dtype": "qi16f32", "params": p.describe()}
    outs = {}
    for tier in ("compiled", "stream_compiled", "interpret"):
        eng = QuantConvForward(p, machine=KNM, execution_tier=tier)

        def run(eng=eng, tier=tier):
            outs[tier] = eng.run_quantized(qx, qw)

        if tier != "interpret":
            run()
        results[f"{tier}_s"] = _time_call(run, repeats)
    results["exact"] = bool(
        np.array_equal(
            outs["compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
        and np.array_equal(
            outs["stream_compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
    )
    results["speedup"] = results["interpret_s"] / results["compiled_s"]
    results["stream_speedup"] = (
        results["compiled_s"] / results["stream_compiled_s"]
    )
    return results


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--layers", default=None,
                    help="comma-separated Table-1 layer ids "
                         f"(default {DEFAULT_LAYERS})")
    ap.add_argument("--minibatch", type=int, default=1,
                    help="N per layer (1 keeps the interpreter tier "
                         "affordable; relative speedups are N-independent)")
    ap.add_argument("--repeats", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="one small f32 layer only (CI smoke)")
    ap.add_argument("--no-quant", action="store_true",
                    help="skip the int16 (KNM) measurement")
    ap.add_argument("--out", default="BENCH_exec_tiers.json")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="fail if the geomean speedup is below this")
    ap.add_argument("--min-stream-speedup", type=float, default=0.0,
                    help="fail if the geomean stream_compiled-vs-compiled "
                         "speedup is below this (CI regression gate)")
    args = ap.parse_args(argv)

    if args.quick:
        layers = [2]
        quant_layers = []
    else:
        ids = (
            [int(t) for t in args.layers.split(",")]
            if args.layers else DEFAULT_LAYERS
        )
        layers = ids
        quant_layers = [] if args.no_quant else [8]

    rows = []
    for lid in layers:
        p = resnet50_layer(lid, minibatch=args.minibatch)
        row = bench_f32_layer(lid, p, args.repeats)
        rows.append(row)
        print(
            f"layer {lid:>2} f32   interpret {row['interpret_s']:8.3f}s  "
            f"compiled {row['compiled_s']:8.3f}s  "
            f"stream {row['stream_compiled_s']:8.3f}s  "
            f"speedup {row['speedup']:7.1f}x  "
            f"stream {row['stream_speedup']:5.2f}x  exact={row['exact']}"
        )
    for lid in quant_layers:
        p = resnet50_layer(lid, minibatch=args.minibatch)
        row = bench_q16_layer(lid, p, args.repeats)
        rows.append(row)
        print(
            f"layer {lid:>2} q16   interpret {row['interpret_s']:8.3f}s  "
            f"compiled {row['compiled_s']:8.3f}s  "
            f"stream {row['stream_compiled_s']:8.3f}s  "
            f"speedup {row['speedup']:7.1f}x  "
            f"stream {row['stream_speedup']:5.2f}x  exact={row['exact']}"
        )

    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in rows) / len(rows)
    )
    geomean_stream = math.exp(
        sum(math.log(r["stream_speedup"]) for r in rows) / len(rows)
    )
    all_exact = all(r["exact"] for r in rows)
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = os.cpu_count() or 1
    report = {
        "bench": "exec_tiers",
        "machine_f32": SKX.name,
        "machine_f32_fingerprint": SKX.fingerprint(),
        "machine_q16": KNM.name,
        "machine_q16_fingerprint": KNM.fingerprint(),
        "host": {"cpus": os.cpu_count(), "usable_cpus": usable},
        "minibatch": args.minibatch,
        "repeats": args.repeats,
        "layers": rows,
        "geomean_speedup": geomean,
        "geomean_stream_speedup": geomean_stream,
        "all_exact": all_exact,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"geomean speedup {geomean:.1f}x (stream_compiled/compiled "
          f"{geomean_stream:.2f}x) over {len(rows)} measurements "
          f"-> {args.out}")

    if not all_exact:
        print("FAIL: a tier is not bitwise-identical to the interpreter",
              file=sys.stderr)
        return 1
    if geomean < args.min_speedup:
        print(
            f"FAIL: geomean {geomean:.2f}x < required {args.min_speedup}x",
            file=sys.stderr,
        )
        return 1
    if geomean_stream < args.min_stream_speedup:
        print(
            f"FAIL: stream_compiled geomean {geomean_stream:.2f}x < "
            f"required {args.min_stream_speedup}x vs compiled",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
