"""Ablation: heuristic blocking vs exhaustive autotuning.

The paper argues JIT-time specialization beats static one-size-fits-all
kernels; this bench quantifies how close the closed-form section II-B/D
heuristics come to an exhaustive (RB_P, RB_Q) search on Table I.
"""

from conftest import emit

from repro.arch.machine import SKX
from repro.conv.blocking import choose_blocking
from repro.jit.autotune import _price, autotune_blocking
from repro.models.resnet50 import resnet50_layers
from repro.types import DType


def compute():
    rows = []
    for lid, p in resnet50_layers(28):
        if lid % 2:  # representative half of the table, for bench time
            continue
        tuned = autotune_blocking(p, SKX)
        heur = choose_blocking(p, SKX)
        heur_cpf = _price(p, SKX, heur.rb_p, heur.rb_q, DType.F32)
        rows.append(
            (lid, (heur.rb_p, heur.rb_q), tuned.best,
             heur_cpf / tuned.cycles_per_flop)
        )
    return rows


def test_autotune_vs_heuristic(benchmark):
    rows = benchmark(compute)
    emit(
        "Ablation: heuristic RB vs exhaustive autotune (SKX fwd)",
        [f"layer {lid:>2}: heuristic {h}  tuned {t}  "
         f"heur/tuned cycles {r:4.2f}" for lid, h, t, r in rows],
    )
    # the heuristics must be near-optimal everywhere (paper's rules hold)
    assert all(r <= 1.08 for *_, r in rows)
