"""Table I: the 20 ResNet-50 layer specifications.

Regenerates the table's rows from the model zoo and benchmarks the blocking
planner over all of them (the per-layer setup work the JIT does once).
"""

from conftest import emit, series_row

from repro.arch.machine import KNM, SKX
from repro.conv.blocking import choose_blocking, choose_upd_blocking
from repro.models.resnet50 import RESNET50_TABLE1, resnet50_layers


def plan_all():
    plans = []
    for machine, nb in ((SKX, 28), (KNM, 70)):
        for lid, p in resnet50_layers(nb):
            plans.append(
                (
                    lid,
                    choose_blocking(p, machine),
                    choose_upd_blocking(p, machine),
                )
            )
    return plans


def test_table1_rows(benchmark):
    plans = benchmark(plan_all)
    lines = [
        f"{'id':>3} {'C':>5} {'K':>5} {'H':>4} {'W':>4} {'R':>2} {'S':>2} "
        f"{'str':>3} | {'RBpxRBq(SKX)':>13} {'order':>9}"
    ]
    skx_plans = {lid: pl for lid, pl, _ in plans[:20]}
    for lid in sorted(RESNET50_TABLE1):
        c, k, h, w, r, s, stride = RESNET50_TABLE1[lid]
        pl = skx_plans[lid]
        lines.append(
            f"{lid:>3} {c:>5} {k:>5} {h:>4} {w:>4} {r:>2} {s:>2} "
            f"{stride:>3} | {pl.rb_p:>6}x{pl.rb_q:<6} {pl.loop_order:>9}"
        )
    emit("Table I: ResNet-50 layer specs + chosen blocking (SKX)", lines)
    assert len(plans) == 40
    # the paper's minibatches: 28 (SKX) and 70 (KNM)
    assert resnet50_layers(28)[0][1].N == 28
    assert resnet50_layers(70)[0][1].N == 70
