"""Figure 6: ResNet-50 forward propagation on KNM (minibatch 70).

Expected shape: 3x3 layers 70-75% of peak; 1x1 layers ~55% (L2-bound per
the section III-B roofline -- notably below their SKX efficiency); MKL-DNN
within a few percent (identical instruction sequences on KNM).
"""

import statistics

from conftest import emit, series_row

from repro.arch.machine import KNM, SKX
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def compute_fig6():
    model = ConvPerfModel(KNM)
    skx_model = ConvPerfModel(SKX)
    rows = {k: [] for k in ("thiswork", "mkl", "eff", "skx_eff")}
    for (lid, p), (_, ps) in zip(resnet50_layers(70), resnet50_layers(28)):
        tw = model.estimate_forward(p)
        rows["thiswork"].append(tw.gflops)
        rows["eff"].append(100 * tw.efficiency)
        rows["mkl"].append(model.estimate_forward(p, impl="mkl").gflops)
        rows["skx_eff"].append(100 * skx_model.estimate_forward(ps).efficiency)
    return rows


def test_fig6(benchmark):
    rows = benchmark(compute_fig6)
    ids = list(range(1, 21))
    emit(
        "Fig. 6: ResNet-50 fwd, KNM (GFLOPS/layer)",
        [
            series_row("layer", ids, "7d"),
            series_row("thiswork", rows["thiswork"]),
            series_row("mkl", rows["mkl"]),
            series_row("% peak", rows["eff"], "7.1f"),
        ],
    )
    r3 = [rows["eff"][i - 1] for i in (4, 8, 13)]
    assert all(65 <= e <= 85 for e in r3)
    r1 = [rows["eff"][i - 1] for i in (5, 9, 10, 14, 15, 19, 20)]
    assert 35 <= statistics.mean(r1) <= 60
    # KNM 1x1 efficiency sits below SKX 1x1 efficiency (roofline story)
    for i in (9, 14, 19):
        assert rows["eff"][i - 1] < rows["skx_eff"][i - 1]
    # MKL-DNN: same sequence, similar performance
    for tw, mk in zip(rows["thiswork"], rows["mkl"]):
        assert 0.8 <= mk / tw <= 1.2
