"""Ablation: weight-gradient parallelization strategies (section II-J).

For each ResNet-50 layer on KNM, evaluates the full G spectrum (shared ->
hybrid -> per-thread copies) with the section II-J bandwidth model and
shows that (a) the dryrun's choice is optimal within the spectrum and
(b) different layers genuinely prefer different strategies.
"""

from conftest import emit

from repro.arch.machine import KNM
from repro.models.resnet50 import resnet50_layers
from repro.parallel.wu_strategies import (
    choose_upd_strategy,
    upd_strategy_traffic,
)


def compute():
    rows = []
    for lid, p in resnet50_layers(70):
        best = choose_upd_strategy(p, KNM, 72)
        extremes = {
            g: upd_strategy_traffic(p, KNM, 72, g).est_time
            for g in (1, 8, 72)
        }
        rows.append((lid, best, extremes))
    return rows


def test_wu_strategies(benchmark):
    rows = benchmark(compute)
    lines = [f"{'id':>3} {'chosen':>10} {'t(G=1)':>9} {'t(G=8)':>9} "
             f"{'t(G=72)':>9}"]
    for lid, best, ext in rows:
        lines.append(
            f"{lid:>3} {best.name:>10} {ext[1]*1e3:>8.2f}m "
            f"{ext[8]*1e3:>8.2f}m {ext[72]*1e3:>8.2f}m"
        )
    emit("Ablation: dW strategies on KNM (bandwidth-model time)", lines)

    chosen = {best.name for _, best, _ in rows}
    assert len(chosen) >= 2  # different layers pick different strategies
    for lid, best, ext in rows:
        assert best.est_time <= min(ext.values()) + 1e-12
    # the big-dW late layers avoid the full per-thread-copies extreme
    late = [best for lid, best, _ in rows if lid in (19, 20)]
    assert all(b.ncopies < 72 for b in late)
