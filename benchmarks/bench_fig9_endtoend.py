"""Figure 9: end-to-end ResNet-50 training, 1-16 nodes of KNM and 2S-SKX.

Prints img/s and parallel efficiency next to the paper's measurements and
the published TensorFlow/P100 reference points.  Expected shape: single
node ~192 img/s (KNM) / ~136 img/s (2S-SKX), ~90% parallel efficiency at
16 nodes, ~1.5-2.3x over TensorFlow+MKL-DNN.
"""

import pytest

from conftest import emit

from repro.gxm.e2e import estimate_training, fig9_scaling
from repro.arch.machine import KNM
from repro.perf.references import PAPER_MEASURED, REFERENCE_IMG_PER_S


def compute_fig9():
    return {name: fig9_scaling(name) for name in ("KNM", "SKX")}


def test_fig9(benchmark):
    curves = benchmark(compute_fig9)
    lines = []
    for name, pts in curves.items():
        for pt in pts:
            paper = PAPER_MEASURED.get(("resnet50", name, pt.nodes))
            ref = f"  paper={paper:.0f}" if paper else ""
            lines.append(
                f"{name:>4} {pt.nodes:>2} nodes: {pt.imgs_per_s:7.0f} img/s "
                f"(par.eff {100*pt.parallel_efficiency:5.1f}%){ref}"
            )
    for (topo, label), v in REFERENCE_IMG_PER_S.items():
        if topo == "resnet50":
            lines.append(f"ref  {label}: {v:.0f} img/s")
    emit("Fig. 9: end-to-end ResNet-50 training", lines)

    knm, skx = curves["KNM"], curves["SKX"]
    assert knm[0].imgs_per_s == pytest.approx(192, rel=0.2)
    assert skx[0].imgs_per_s == pytest.approx(136, rel=0.25)
    assert knm[-1].imgs_per_s == pytest.approx(2430, rel=0.25)
    assert skx[-1].parallel_efficiency >= 0.75
    tf = REFERENCE_IMG_PER_S[("resnet50", "2S-SKX TF+MKL-DNN [24]")]
    assert 1.3 <= skx[0].imgs_per_s / tf <= 2.5


def test_single_node_inception(benchmark):
    est = benchmark(lambda: estimate_training(KNM, "inception_v3"))
    emit(
        "Section III-C: Inception-v3 single-node KNM",
        [f"model: {est.imgs_per_s:.0f} img/s  "
         f"(paper: {PAPER_MEASURED[('inception_v3', 'KNM', 1)]:.0f}; the "
         "model is optimistic here -- see EXPERIMENTS.md)"],
    )
    assert est.imgs_per_s > 0
