"""Shared helpers for the figure-regeneration benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper: the
benchmarked callable computes the full data series (so pytest-benchmark
reports how long the model evaluation takes), and the series itself is
printed once in the paper's row format with the expected qualitative shape
asserted.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.
"""

from __future__ import annotations

import pytest


def emit(title: str, lines: list[str]) -> None:
    """Print one figure's rows (visible with -s / on bench failures)."""
    print(f"\n=== {title} ===")
    for line in lines:
        print(line)


def series_row(name: str, values, fmt="7.0f") -> str:
    return f"{name:>10} " + " ".join(format(v, fmt) for v in values)
