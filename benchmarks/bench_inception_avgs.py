"""Sections III-A/III-B text: Inception-v3 topology-average GFLOPS.

Paper: SKX this-work 2833/2695/2621 (fwd/bwd/upd) vs MKL 2758/2434/2301;
KNM this-work 6647/5666/4584 vs MKL 7374/5953/4654.  Expected shape
(asserted): averages within ~±25% of the paper's, fwd >= bwd >= upd
ordering for this work, and upd clearly lowest on KNM.
"""

import statistics

import pytest

from conftest import emit

from repro.arch.machine import KNM, SKX
from repro.models.inception_v3 import inception_v3_layers
from repro.perf.model import ConvPerfModel

PAPER = {
    ("SKX", "thiswork"): (2833, 2695, 2621),
    ("SKX", "mkl"): (2758, 2434, 2301),
    ("KNM", "thiswork"): (6647, 5666, 4584),
    ("KNM", "mkl"): (7374, 5953, 4654),
}


def compute_averages():
    out = {}
    for machine, nb in ((SKX, 28), (KNM, 70)):
        model = ConvPerfModel(machine)
        for impl in ("thiswork", "mkl"):
            f, b, u = [], [], []
            for p, count in inception_v3_layers(nb):
                f.append(model.estimate_forward(p, impl=impl).gflops)
                b.append(model.estimate_backward(p, impl=impl).gflops)
                u.append(model.estimate_update(p, impl=impl).gflops)
            out[(machine.name, impl)] = tuple(
                statistics.mean(v) for v in (f, b, u)
            )
    return out


def test_inception_averages(benchmark):
    avgs = benchmark(compute_averages)
    lines = []
    for key, got in avgs.items():
        paper = PAPER[key]
        lines.append(
            f"{key[0]:>4} {key[1]:>9}: fwd/bwd/upd = "
            f"{got[0]:6.0f}/{got[1]:6.0f}/{got[2]:6.0f}  "
            f"(paper {paper[0]}/{paper[1]}/{paper[2]})"
        )
    emit("Inception-v3 topology-average GFLOPS", lines)

    for key, got in avgs.items():
        paper = PAPER[key]
        for g, pval in zip(got, paper):
            assert g == pytest.approx(pval, rel=0.35), (key, g, pval)
    tw_knm = avgs[("KNM", "thiswork")]
    assert tw_knm[0] > tw_knm[2]  # upd is the slow pass on KNM
