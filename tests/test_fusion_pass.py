"""GxM topology fusion pass: structure and exact training equivalence."""

import numpy as np
import pytest

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.fusion_pass import fuse_topology, fusion_report
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology


def simple_topo():
    topo = TopologySpec("t")
    d = topo.data("data")
    t = topo.conv("c1", d, 16, 3, relu=True)
    t = topo.conv("c2", t, 16, 3, relu=True)
    t = topo.global_pool("gap", t)
    t = topo.fc("fc", t, 4)
    topo.loss("loss", t)
    return topo


class TestPassStructure:
    def test_relu_layers_removed(self):
        before = simple_topo()
        after = fuse_topology(before)
        assert len(after.layers) == len(before.layers) - 2
        assert not any(l.type == "ReLU" for l in after.layers)
        assert after.layer("c1").attrs["fused_relu"] is True

    def test_top_names_preserved_for_consumers(self):
        after = fuse_topology(simple_topo())
        # c1's fused top keeps the ReLU's name so c2's bottom still resolves
        assert after.layer("c1").tops == ["c1_relu"]
        assert after.layer("c2").bottoms == ["c1_relu"]

    def test_multi_consumer_preactivation_not_fused(self):
        topo = TopologySpec("t")
        d = topo.data("data")
        c = topo.conv("c1", d, 16, 3)  # pre-activation tensor "c1"
        topo.add(
            __import__("repro.gxm.topology", fromlist=["LayerSpec"]).LayerSpec(
                "r1", "ReLU", ["c1"], ["r1"], {}
            )
        )
        # second consumer of the pre-activation
        topo.eltwise("sum", "c1", "r1")
        topo.global_pool("gap", "sum")
        topo.fc("fc", "gap", 4)
        topo.loss("loss", "fc")
        after = fuse_topology(topo)
        assert any(l.type == "ReLU" for l in after.layers)
        assert "fused_relu" not in after.layer("c1").attrs

    def test_relu_after_bn_not_fused_into_conv(self):
        topo = TopologySpec("t")
        d = topo.data("data")
        t = topo.conv("c1", d, 16, 3, relu=True, batchnorm=True)
        topo.global_pool("gap", t)
        topo.fc("fc", "gap", 4)
        topo.loss("loss", "fc")
        after = fuse_topology(topo)
        # the ReLU follows BatchNorm, not the conv -> untouched
        assert any(l.type == "ReLU" for l in after.layers)

    def test_report(self):
        before = simple_topo()
        after = fuse_topology(before)
        r = fusion_report(before, after)
        assert "2 ReLU" in r and "2 convolution" in r

    def test_original_untouched(self):
        topo = simple_topo()
        n = len(topo.layers)
        fuse_topology(topo)
        assert len(topo.layers) == n


class TestNumericalEquivalence:
    @pytest.mark.parametrize("engine", ["fast", "blocked"])
    def test_training_identical_with_and_without_fusion(self, engine, rng):
        """Fusion is a data-movement optimization: every loss and every
        gradient must match the un-fused graph exactly."""
        topo = simple_topo()
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        runs = {}
        for fuse in (False, True):
            etg = ExecutionTaskGraph(
                topo, (4, 16, 8, 8), engine=engine, seed=11, fuse=fuse
            )
            loss = etg.train_step(x, y)
            runs[fuse] = (loss, etg.nodes["c1"].dweight.copy())
        assert runs[False][0] == pytest.approx(runs[True][0], rel=1e-6)
        assert np.allclose(runs[False][1], runs[True][1], rtol=1e-4,
                           atol=1e-6)

    def test_fused_training_converges(self):
        ds = SyntheticImageDataset(n=96, num_classes=4, shape=(16, 8, 8),
                                   seed=4)
        etg = ExecutionTaskGraph(simple_topo(), (16, 16, 8, 8), seed=1,
                                 fuse=True)
        tr = Trainer(etg, lr=0.05)
        tr.fit(ds, batch_size=16, epochs=3)
        assert tr.metrics.losses[-1] < 0.8 * tr.metrics.losses[0]

    def test_resnet_mini_fusion_counts(self):
        """In BN-everywhere topologies the ReLUs follow BN, so the pass is
        conservative -- it must not fuse across the BatchNorm."""
        before = resnet_mini_topology()
        after = fuse_topology(before)
        relus_before = sum(1 for l in before.layers if l.type == "ReLU")
        relus_after = sum(1 for l in after.layers if l.type == "ReLU")
        assert relus_after == relus_before  # all ride on BN or Eltwise
