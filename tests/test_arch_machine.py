"""Machine configs must encode the paper's published hardware numbers."""

import pytest

from repro.arch.machine import KNM, SKX, machine_by_name
from repro.arch.roofline import Roofline
from repro.types import DType


class TestSKX:
    def test_per_core_peak_matches_paper(self):
        # 2 FMA ports x 16 lanes x 2 flops x 2.3 GHz = 147.2 GFLOPS (III-B)
        assert SKX.peak_flops_core == pytest.approx(147.2e9, rel=1e-3)

    def test_l2_bandwidths(self):
        assert SKX.l2_read_bw == pytest.approx(147e9)
        assert SKX.l2_write_bw == pytest.approx(74e9)

    def test_stream_triad(self):
        assert SKX.mem_bw == pytest.approx(105e9)

    def test_has_llc(self):
        assert SKX.llc_bytes > 30 * 1024 * 1024

    def test_vlen(self):
        assert SKX.vlen() == 16
        assert SKX.input_vlen(DType.QI16F32) == 32

    def test_fused_memop_penalty(self):
        # ~15% micro-op split penalty (section III-B)
        assert SKX.fused_memop_penalty == pytest.approx(0.15)


class TestKNM:
    def test_per_core_peak_matches_paper(self):
        # section III-B: "the core's peak performance is 192 GFLOPS"
        assert KNM.peak_flops_core == pytest.approx(192e9, rel=1e-3)

    def test_l2_bandwidths(self):
        # section III-B: 54.4 GB/s read, 27 GB/s write per core
        assert KNM.l2_read_bw == pytest.approx(54.4e9)
        assert KNM.l2_write_bw == pytest.approx(27e9)

    def test_no_llc(self):
        assert KNM.llc_bytes == 0

    def test_mcdram(self):
        assert KNM.mem_bw == pytest.approx(470e9)

    def test_4fma_and_vnni(self):
        assert KNM.has_4fma
        assert KNM.vnni16_speedup == pytest.approx(2.0)

    def test_int16_mac_peak_doubles(self):
        assert KNM.peak_macs_core(DType.QI16F32) == pytest.approx(
            2 * KNM.peak_macs_core(DType.F32)
        )

    def test_compute_cores_match_paper(self):
        # III-C: 62 of 72 cores compute in multi-node runs
        assert KNM.compute_cores == 62


class TestLookup:
    def test_by_name(self):
        assert machine_by_name("skx") is SKX
        assert machine_by_name("KNM") is KNM

    def test_unknown(self):
        with pytest.raises(KeyError):
            machine_by_name("EPYC")

    def test_scaled_copy(self):
        half = SKX.scaled(cores=14)
        assert half.cores == 14
        assert SKX.cores == 28  # original untouched


class TestRoofline:
    def test_knm_1x1_regime_is_l2_bound(self):
        """Section III-B: 1x1 operational intensity is L2-bound on KNM but
        near compute-bound on SKX."""
        # a representative 1x1 kernel: ~2 flops per L2 byte -- between the
        # two machines' knees (KNM 3.5, SKX 1.0 flops/byte)
        flops = 2e9
        l2 = 1e9
        knm = Roofline(KNM).attainable(flops, l2_read=l2)
        skx = Roofline(SKX).attainable(flops, l2_read=l2)
        assert knm.bound == "l2_read"
        assert skx.bound == "compute"

    def test_knee_ordering(self):
        # KNM's DRAM knee sits lower (more bandwidth per flop)
        assert (
            Roofline(KNM).operational_intensity_knee()
            < Roofline(SKX).operational_intensity_knee()
        )

    def test_compute_efficiency_scales_roof(self):
        r = Roofline(SKX)
        full = r.attainable(1e9, compute_efficiency=1.0)
        half = r.attainable(1e9, compute_efficiency=0.5)
        assert half.time_s == pytest.approx(2 * full.time_s)
