"""repro.collective: the fault-tolerant overlapped ring all-reduce.

Two layers of coverage:

* fast unit tests of the deterministic pieces -- fold orders (the chain
  ring's rank-order fold must equal the sequential root fold *bitwise*),
  tree edges, bucket cutting, the framed/CRC'd hop format, the
  bucket-filtered fault site;
* process-level integration: healthy ring training is bitwise identical
  to blocking root-mode training; a worker killed or hung mid-collective
  (every ring position, early and late buckets) completes the step
  degraded and -- under ``recompute`` -- finishes with weights bitwise
  identical to an undisturbed run; ``rescale`` folds the survivors with
  the correct weighting.  Plus regressions for the every-worker-failed
  respawn path and the dead-worker reply drain.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import numpy as np
import pytest

from repro.collective import (
    CorruptBucket,
    GradBucketer,
    Membership,
    decode_bucket,
    fold_gradients,
    fold_ring,
    fold_tree,
    layer_param_indices,
    peers_for,
    ring_peers,
    send_bucket,
    tree_children,
    tree_parent,
    tree_peers,
)
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.gxm.parser import parse_topology
from repro.models.resnet50 import resnet_mini_topology
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience import FaultPlan, FaultSpec, WorkerFailure
from repro.types import ReproError

pytestmark = pytest.mark.timeout(120)

SHAPE = (3, 8, 8)
CLASSES = 4
#: small enough that the tiny topology cuts several buckets per step
TINY_BUCKET = 1024


def tiny_topology():
    return resnet_mini_topology(num_classes=CLASSES, width=8)


def tiny_dataset(n=18, seed=3):
    return SyntheticImageDataset(
        n=n, num_classes=CLASSES, shape=SHAPE, seed=seed
    )


def tiny_etg():
    return ExecutionTaskGraph(
        parse_topology(tiny_topology().to_text()), (2, *SHAPE),
        engine="fast", seed=0,
    )


def weights_of(etg):
    return [p.copy() for p in etg.params()]


@pytest.fixture
def clean_metrics():
    get_metrics().clear()
    yield get_metrics()
    get_metrics().clear()


def run_trainer(ds, **kw):
    """One full training run; returns (trainer, weights, losses)."""
    kw.setdefault("step_timeout", 15.0)
    t = ProcessParallelTrainer(
        tiny_topology(), (2, *SHAPE), nodes=kw.pop("nodes", 3), seed=0,
        **kw,
    )
    try:
        t.fit(ds, batch_size=2, epochs=1)
        return t, weights_of(t.root), list(t.metrics.losses)
    finally:
        t.close()


# ---------------------------------------------------------------------------
class TestFolds:
    def test_fold_ring_is_bitwise_rank_order(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 5, 8):
            shards = [
                [rng.standard_normal((3, 4)).astype(np.float32),
                 rng.standard_normal(7).astype(np.float32)]
                for _ in range(n)
            ]
            got = fold_ring(shards, n)
            for i in range(2):
                acc = shards[0][i].copy()
                for s in shards[1:]:
                    acc += s[i]
                acc /= n
                assert np.array_equal(got[i], acc)
            # inputs must not be mutated (the root reuses them)
            assert not np.array_equal(got[0], shards[0][0])

    def test_fold_tree_matches_binomial_combination(self):
        rng = np.random.default_rng(1)
        for n in (1, 2, 3, 4, 5, 7, 8):
            shards = [[rng.standard_normal(5)] for _ in range(n)]
            got = fold_tree(shards, n)[0]
            # hand-rolled binomial: (g0+g1)+(g2+g3), then pair the pairs
            parts = [s[0].copy() for s in shards]
            d = 1
            while d < n:
                for r in range(0, n - d, 2 * d):
                    parts[r] = parts[r] + parts[r + d]
                d *= 2
            assert np.array_equal(got, parts[0] / n)

    def test_fold_gradients_dispatches_by_mode(self):
        shards = [[np.ones(3)], [np.full(3, 2.0)]]
        assert np.array_equal(
            fold_gradients("ring", shards, 2)[0], np.full(3, 1.5)
        )
        assert np.array_equal(
            fold_gradients("tree", shards, 2)[0], np.full(3, 1.5)
        )
        assert np.array_equal(
            fold_gradients("root", shards, 2)[0], np.full(3, 1.5)
        )


class TestTopologies:
    def test_ring_peers_are_the_two_neighbours(self):
        assert ring_peers(0, 2) == {1}
        assert ring_peers(1, 4) == {0, 2}
        assert ring_peers(0, 4) == {1, 3}

    @pytest.mark.parametrize("nodes", [2, 3, 4, 5, 8, 9])
    def test_tree_edges_are_consistent(self, nodes):
        for rank in range(1, nodes):
            parent = tree_parent(rank)
            assert 0 <= parent < rank
            assert rank in tree_children(parent, nodes)
        # edge symmetry: peers on both ends agree
        for a in range(nodes):
            for b in tree_peers(a, nodes):
                assert a in tree_peers(b, nodes)
        # reduce edges form a spanning tree: N-1 edges total
        n_edges = sum(len(tree_children(r, nodes)) for r in range(nodes))
        assert n_edges == nodes - 1

    def test_peers_for_rejects_root_mode(self):
        with pytest.raises(ReproError, match="no peer topology"):
            peers_for("root", 0, 2)

    def test_membership_reset(self):
        m = Membership(3)
        m.stale = False
        m.reset_all()
        assert m.stale and m.needs_sync == {0, 1, 2}


# ---------------------------------------------------------------------------
class TestBucketing:
    def test_layer_indices_cover_params_in_order(self):
        etg = tiny_etg()
        idx = layer_param_indices(etg)
        flat = [i for t in idx.values() for i in t]
        assert flat == list(range(len(etg.params())))

    def test_tiny_topology_cuts_multiple_buckets(self):
        # the integration fault matrix targets bucket 0 *and* bucket 1;
        # this guards the premise that both exist at TINY_BUCKET bytes
        etg = tiny_etg()
        idx = layer_param_indices(etg)
        sizes = [p.nbytes for p in etg.params()]
        b = GradBucketer(idx, sizes, TINY_BUCKET)
        grads = etg.params()  # stand-ins: only shapes/sizes matter
        cut = []
        for layer, indices in idx.items():
            cut += b.land(layer, [grads[i] for i in indices])
        cut += b.finish(grads)
        assert len(cut) >= 2

    def test_cut_at_cap_and_exactly_once_coverage(self):
        idx = {"a": (0, 1), "b": (2,), "c": (3,)}
        sizes = [40, 40, 100, 8]
        b = GradBucketer(idx, sizes, 64)
        arrs = [np.zeros(s // 8) for s in sizes]
        first = b.land("a", arrs[:2])  # 80 bytes >= 64: cut now
        assert len(first) == 1
        spec, payload = first[0]
        assert spec.bucket_id == 0 and spec.indices == (0, 1)
        assert len(payload) == 2
        assert b.land("b", [arrs[2]]) != []  # 100 >= 64: its own bucket
        rest = b.finish(arrs)
        assert [s.indices for s, _ in rest] == [(3,)]
        assert b.buckets_cut == 3

    def test_finish_sweeps_layers_that_never_landed(self):
        idx = {"a": (0,), "b": (1,)}
        b = GradBucketer(idx, [8, 8], 1 << 20)
        cut = b.finish([np.zeros(1), np.ones(1)])
        assert len(cut) == 1
        spec, payload = cut[0]
        assert spec.indices == (0, 1)
        assert np.array_equal(payload[1], np.ones(1))

    def test_relanding_a_layer_is_idempotent(self):
        idx = {"a": (0,)}
        b = GradBucketer(idx, [8], 1 << 20)
        b.land("a", [np.zeros(1)])
        b.land("a", [np.zeros(1)])
        cut = b.finish([np.zeros(1)])
        assert cut[0][0].indices == (0,)


# ---------------------------------------------------------------------------
class TestChannels:
    def test_bucket_roundtrip_over_a_real_pipe(self):
        a, b = mp.Pipe()
        arrays = [np.arange(6, dtype=np.float32).reshape(2, 3)]
        n = send_bucket(a, "red", step=3, epoch=1, bucket_id=2, sender=0,
                        arrays=arrays)
        assert n > 0
        kind, step, epoch, bucket_id, sender, got = decode_bucket(
            b.recv(), culprit=0
        )
        assert (kind, step, epoch, bucket_id, sender) == ("red", 3, 1, 2, 0)
        assert np.array_equal(got[0], arrays[0])

    def test_corrupted_payload_fails_the_checksum(self):
        a, b = mp.Pipe()
        send_bucket(a, "red", 0, 0, 0, 1, [np.zeros(8)], corrupt=True)
        with pytest.raises(CorruptBucket, match="checksum") as ei:
            decode_bucket(b.recv(), culprit=1)
        assert ei.value.culprit == 1

    @pytest.mark.parametrize(
        "frame",
        [
            "not a tuple",
            ("bkt", "red", 0),  # too short
            ("wrong", "red", 0, 0, 0, 1, 0, b""),  # bad tag
            ("bkt", "red", "x", 0, 0, 1, 0, b""),  # non-int header
        ],
    )
    def test_malformed_frames_are_typed_errors(self, frame):
        with pytest.raises(CorruptBucket, match="malformed"):
            decode_bucket(frame, culprit=2)


class TestFaultSiteFilters:
    def test_bucket_filter_gates_collective_hop(self, clean_metrics):
        from repro.resilience.faults import FaultInjector

        plan = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind="corrupt_message", step=1,
            rank=2, bucket=3,
        ),))
        inj = FaultInjector(plan)
        assert inj.fire("collective.hop", step=1, rank=2, bucket=0) is None
        assert inj.fire("collective.hop", step=1, rank=0, bucket=3) is None
        hit = inj.fire("collective.hop", step=1, rank=2, bucket=3)
        assert hit is not None and hit.kind == "corrupt_message"


# ---------------------------------------------------------------------------
class TestHealthyCollective:
    def test_ring_matches_root_mode_bitwise(self, clean_metrics):
        ds = tiny_dataset()
        _, w_root, l_root = run_trainer(ds, allreduce="root", nodes=2)
        get_metrics().clear()
        t, w_ring, l_ring = run_trainer(
            ds, allreduce="ring", nodes=2, bucket_bytes=TINY_BUCKET
        )
        assert l_ring == l_root
        assert all(np.array_equal(a, b) for a, b in zip(w_ring, w_root))
        steps = len(l_ring)
        m = clean_metrics
        assert m.value("collective.steps") == steps
        assert m.value("collective.buckets") >= 2 * steps  # tiny buckets
        assert m.value("collective.bytes") > 0
        assert m.value("collective.hops") > 0
        assert m.value("collective.rebuilds") == 1
        assert m.value("collective.syncs") == 2  # initial broadcast only
        assert m.value("collective.aborts") == 0
        assert t.failures == []

    def test_overlap_spans_reach_the_root_tracer(self, clean_metrics):
        tracer = get_tracer()
        tracer.clear()
        ds = tiny_dataset(n=12)
        run_trainer(ds, allreduce="ring", trace=True, nodes=2,
                    bucket_bytes=TINY_BUCKET)
        names = tracer.span_names()
        assert "collective.step" in names
        assert "collective.exposed" in names
        tracer.clear()

    def test_tree_mode_trains_with_three_nodes(self, clean_metrics):
        # 3 nodes: a non-power-of-two binomial tree
        ds = tiny_dataset(n=12)
        t, w, losses = run_trainer(
            ds, allreduce="tree", nodes=3, bucket_bytes=TINY_BUCKET
        )
        assert len(losses) == 2
        assert all(np.isfinite(p).all() for p in w)
        assert clean_metrics.value("collective.steps") == 2
        assert t.failures == []

    def test_invalid_allreduce_is_rejected(self):
        with pytest.raises(ReproError, match="unknown allreduce"):
            ProcessParallelTrainer(
                tiny_topology(), (2, *SHAPE), nodes=2, allreduce="mesh"
            )

    def test_single_node_degenerates_to_root(self):
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=1, allreduce="ring"
        )
        try:
            assert t.allreduce == "root"
        finally:
            t.close()


# ---------------------------------------------------------------------------
class TestMidCollectiveFaults:
    """SIGKILL and hang at every ring position, early and late buckets:
    the step completes degraded and recovers bit-identically."""

    @pytest.fixture(scope="class")
    def ring_reference(self):
        ds = tiny_dataset()
        get_metrics().clear()
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=3, seed=0,
            step_timeout=15.0, bucket_bytes=TINY_BUCKET,
        )
        try:
            t.fit(ds, batch_size=2, epochs=1)
            return ds, weights_of(t.root), list(t.metrics.losses)
        finally:
            t.close()
            get_metrics().clear()

    @pytest.mark.parametrize(
        "kind,rank,bucket",
        [
            ("crash", 0, 0),   # first ring position, early bucket
            ("crash", 1, 1),   # middle position, late bucket
            ("crash", 2, 0),   # last position (the averaging rank)
            ("hang", 0, 1),
            ("hang", 1, 0),
            ("hang", 2, 1),
        ],
    )
    def test_fault_recovers_bit_identical(self, clean_metrics,
                                          ring_reference, kind, rank,
                                          bucket):
        ds, ref_w, ref_losses = ring_reference
        plan = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind=kind, step=1, rank=rank,
            bucket=bucket,
        ),))
        timeout = 2.0 if kind == "hang" else 15.0
        t, w, losses = run_trainer(
            ds, fault_plan=plan, bucket_bytes=TINY_BUCKET,
            step_timeout=timeout,
        )
        m = clean_metrics
        assert m.value("resilience.degraded_steps") == 1
        assert m.value("resilience.respawns") == 1
        assert m.value("collective.aborts") == 1
        assert [f.rank for f in t.failures] == [rank]
        assert losses == ref_losses
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))

    def test_corrupt_hop_blames_the_sender(self, clean_metrics,
                                           ring_reference):
        ds, ref_w, ref_losses = ring_reference
        plan = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind="corrupt_message", step=2,
            rank=1, bucket=0,
        ),))
        t, w, losses = run_trainer(
            ds, fault_plan=plan, bucket_bytes=TINY_BUCKET
        )
        assert [f.rank for f in t.failures] == [1]
        assert clean_metrics.value("collective.errors.corrupt") == 1
        assert losses == ref_losses
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))

    def test_simultaneous_crash_every_rank(self, clean_metrics,
                                           ring_reference):
        # all three ranks die at the same hop: the wait loop blames only
        # the first casualty it sees, so the others reach completion as
        # unblamed missing results -- they must still be recomputed,
        # never silently dropped from the fold divisor / loss weighting
        ds, ref_w, ref_losses = ring_reference
        plan = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind="crash", step=1, bucket=0,
        ),))
        t, w, losses = run_trainer(
            ds, fault_plan=plan, bucket_bytes=TINY_BUCKET,
            max_respawns=3,
        )
        m = clean_metrics
        assert m.value("resilience.degraded_steps") == 1
        assert m.value("resilience.respawns") == 3
        assert sorted(f.rank for f in t.failures) == [0, 1, 2]
        assert losses == ref_losses
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))

    def test_rescale_weighting_matches_root_mode(self, clean_metrics):
        # losing rank 1's shard mid-collective must fold the survivors
        # exactly like root mode losing the same shard pre-collective
        ds = tiny_dataset(n=12)
        plan_root = FaultPlan(specs=(FaultSpec(
            site="mp.worker.step", kind="crash", step=1, rank=1,
        ),))
        _, w_root, _ = run_trainer(
            ds, allreduce="root", degrade_policy="rescale",
            fault_plan=plan_root,
        )
        get_metrics().clear()
        plan_ring = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind="crash", step=1, rank=1,
            bucket=0,
        ),))
        _, w_ring, _ = run_trainer(
            ds, degrade_policy="rescale", fault_plan=plan_ring,
            bucket_bytes=TINY_BUCKET,
        )
        assert all(np.array_equal(a, b) for a, b in zip(w_ring, w_root))


# ---------------------------------------------------------------------------
class TestSatelliteRegressions:
    def test_every_worker_failed_respawns_before_raising(
        self, clean_metrics
    ):
        # regression: the all-dead path used to raise before the respawn
        # loop ran, leaving the fleet permanently dead under rescale
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=2, seed=0,
            degrade_policy="rescale", step_timeout=15.0, max_respawns=4,
        )
        try:
            batches = list(tiny_dataset(n=12).batches(4, 1,
                                                      seed=t.shuffle_seed))
            t.train_step(*batches[0])
            for proc in list(t._procs):
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=10)
            with pytest.raises(WorkerFailure, match="every worker"):
                t.train_step(*batches[1])
            # both ranks were respawned before the raise...
            assert t.live_workers == 2
            assert clean_metrics.value("resilience.respawns") == 2
            # ...so the next step trains instead of failing again
            t.train_step(*batches[2])
            assert len(t.metrics.losses) == 2
        finally:
            t.close()

    def test_recv_drains_every_queued_reply_of_a_dead_worker(self):
        # regression: _recv used to drain at most ONE queued message
        # after noticing the process died -- a worker that sent a stale
        # ack plus its real reply and then exited was misreported dead
        def chatty(conn):
            conn.send(("ringok", 7))
            conn.send(("grads", 3, "payload", 0.5, 0.5, None))
            conn.close()

        parent, child = mp.Pipe()
        proc = mp.get_context("fork").Process(target=chatty, args=(child,))
        proc.start()
        child.close()
        proc.join(timeout=10)
        time.sleep(0.1)  # ensure the death is observable before _recv
        t = object.__new__(ProcessParallelTrainer)
        t.step_timeout = 5.0
        t._conns = [parent]
        t._procs = [proc]
        reply = t._recv(0, want=(("grads",), 3))
        assert reply[0] == "grads" and reply[2] == "payload"

    def test_worker_reply_crash_still_counts_the_step(
        self, clean_metrics
    ):
        # the mp.worker.reply site kills the worker right after its
        # reply is queued: the step must complete healthy off the
        # drained pipe, with the death only surfacing next step
        ds = tiny_dataset(n=12)
        _, ref_w, ref_losses = run_trainer(ds, allreduce="root")
        get_metrics().clear()
        plan = FaultPlan(specs=(FaultSpec(
            site="mp.worker.reply", kind="crash", step=0, rank=1,
        ),))
        t, w, losses = run_trainer(
            ds, allreduce="root", fault_plan=plan
        )
        m = get_metrics()
        assert losses[0] == ref_losses[0]  # step 0 completed healthy
        assert m.value("resilience.degraded_steps") == 1  # step 1 only
        assert m.value("resilience.respawns") == 1
        assert losses == ref_losses  # recompute keeps bit-identity
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))
