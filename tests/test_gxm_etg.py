"""ETG execution: end-to-end numerics and training behaviour."""

import numpy as np
import pytest

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import SGD, Trainer
from repro.models.resnet50 import resnet_mini_topology


def tiny_topo(num_classes=4):
    topo = TopologySpec("tiny")
    d = topo.data("data")
    t = topo.conv("c1", d, 16, 3, relu=True)
    t = topo.global_pool("gap", t)
    t = topo.fc("fc", t, num_classes)
    topo.loss("loss", t)
    return topo


class TestExecution:
    def test_forward_loss_is_finite(self, rng):
        etg = ExecutionTaskGraph(tiny_topo(), (4, 16, 8, 8), seed=0)
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        loss = etg.train_step(x, y)
        assert np.isfinite(loss) and loss > 0

    def test_initial_loss_near_log_classes(self, rng):
        etg = ExecutionTaskGraph(tiny_topo(8), (8, 16, 8, 8), seed=0)
        x = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 8, 8)
        loss = etg.train_step(x, y)
        assert abs(loss - np.log(8)) < 1.0

    def test_inference_mode_skips_bwd(self, rng):
        etg = ExecutionTaskGraph(tiny_topo(), (2, 16, 8, 8), seed=0)
        x = rng.standard_normal((2, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 2)
        etg.forward_only(x, y)
        grads = etg.grads()
        assert all(np.all(g == 0) for g in grads)

    def test_shapes_inferred(self):
        etg = ExecutionTaskGraph(tiny_topo(), (4, 16, 8, 8))
        assert etg.shapes["c1"] == (4, 16, 8, 8)
        assert etg.shapes["gap"] == (4, 16)
        assert etg.shapes["fc"] == (4, 4)

    def test_missing_loss_rejected(self):
        topo = TopologySpec("noloss")
        d = topo.data("data")
        topo.conv("c", d, 16, 3)
        from repro.types import ReproError

        with pytest.raises(ReproError):
            ExecutionTaskGraph(topo, (1, 16, 4, 4))

    def test_residual_topology_runs(self, rng):
        topo = resnet_mini_topology(num_classes=4, width=16)
        etg = ExecutionTaskGraph(topo, (4, 16, 8, 8), seed=0)
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        assert np.isfinite(etg.train_step(x, y))


class TestGradientCheck:
    def test_end_to_end_weight_gradient(self, rng):
        """Finite-difference check of dLoss/dW through the whole ETG."""
        etg = ExecutionTaskGraph(tiny_topo(), (3, 16, 6, 6), seed=3)
        x = rng.standard_normal((3, 16, 6, 6)).astype(np.float32)
        y = rng.integers(0, 4, 3)
        etg.train_step(x, y)
        conv = etg.nodes["c1"]
        dw = conv.dweight.copy()
        eps = 1e-2
        for idx in [(0, 0, 0, 0), (7, 3, 1, 2)]:
            orig = conv.weight[idx]
            conv.weight[idx] = orig + eps
            lp = etg.forward_only(x, y)
            conv.weight[idx] = orig - eps
            lm = etg.forward_only(x, y)
            conv.weight[idx] = orig
            fd = (lp - lm) / (2 * eps)
            # fp32 forward differences are noisy; 10% agreement proves the
            # analytic gradient path end-to-end
            assert dw[idx] == pytest.approx(fd, rel=1e-1, abs=5e-3)

    def test_blocked_engine_matches_fast(self, rng):
        """The blocked streams engine and the fast engine must produce the
        same losses and gradients inside GxM."""
        x = rng.standard_normal((2, 16, 6, 6)).astype(np.float32)
        y = rng.integers(0, 4, 2)
        losses = {}
        grads = {}
        for engine in ("fast", "blocked"):
            etg = ExecutionTaskGraph(
                tiny_topo(), (2, 16, 6, 6), engine=engine, seed=5
            )
            losses[engine] = etg.train_step(x, y)
            grads[engine] = etg.nodes["c1"].dweight.copy()
        assert losses["fast"] == pytest.approx(losses["blocked"], rel=1e-5)
        assert np.allclose(grads["fast"], grads["blocked"], rtol=1e-3,
                           atol=1e-5)


class TestTraining:
    def test_loss_decreases(self):
        ds = SyntheticImageDataset(n=128, num_classes=4, shape=(16, 8, 8),
                                   seed=2)
        etg = ExecutionTaskGraph(tiny_topo(), (16, 16, 8, 8), seed=1)
        tr = Trainer(etg, lr=0.05)
        tr.fit(ds, batch_size=16, epochs=3)
        m = tr.metrics
        first = np.mean(m.losses[:3])
        last = np.mean(m.losses[-3:])
        assert last < 0.7 * first

    def test_beats_chance_accuracy(self):
        ds = SyntheticImageDataset(n=128, num_classes=4, shape=(16, 8, 8),
                                   seed=2)
        etg = ExecutionTaskGraph(tiny_topo(), (16, 16, 8, 8), seed=1)
        tr = Trainer(etg, lr=0.05)
        tr.fit(ds, batch_size=16, epochs=4)
        assert np.mean(tr.metrics.accuracies[-4:]) > 0.5  # chance = 0.25

    def test_sgd_momentum_math(self):
        p = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1, momentum=0.5)
        g = np.array([1.0], dtype=np.float32)
        opt.step([g])
        assert p[0] == pytest.approx(0.9)
        opt.step([g])
        # velocity = 0.5*1 + 1 = 1.5 -> p = 0.9 - 0.15
        assert p[0] == pytest.approx(0.75)

    def test_weight_decay(self):
        p = np.array([1.0], dtype=np.float32)
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.1)
        opt.step([np.array([0.0], dtype=np.float32)])
        assert p[0] == pytest.approx(1.0 - 0.1 * 0.1)

    def test_data_parallel_matches_single_node_without_bn(self, rng):
        """Sharded batches + gradient averaging == one big batch, when no
        layer carries cross-sample statistics."""
        ds = SyntheticImageDataset(n=64, num_classes=4, shape=(16, 8, 8),
                                   seed=4)
        results = {}
        for nodes in (1, 4):
            etg = ExecutionTaskGraph(tiny_topo(), (16, 16, 8, 8), seed=9)
            tr = Trainer(etg, lr=0.05, nodes=nodes)
            tr.fit(ds, batch_size=16 // nodes, epochs=1)
            results[nodes] = tr.metrics.losses
        assert np.allclose(results[1], results[4], rtol=1e-4)
