"""Paper-style report formatting."""

import networkx  # noqa: F401  (ensures the optional dep is present)
import pytest

from repro.arch.machine import SKX
from repro.conv.params import ConvParams
from repro.gxm.graph import build_node_graph
from repro.gxm.topology import LayerSpec, TopologySpec
from repro.perf.model import ConvPerfModel
from repro.perf.report import format_series, format_table, gflops_row
from repro.types import ReproError


class TestReport:
    @pytest.fixture(scope="class")
    def perfs(self):
        model = ConvPerfModel(SKX)
        ps = [
            ConvParams(N=2, C=16, K=16, H=8, W=8, R=3, S=3, stride=1),
            ConvParams(N=2, C=16, K=32, H=8, W=8, R=1, S=1, stride=1),
        ]
        return [model.estimate_forward(p) for p in ps]

    def test_gflops_row(self, perfs):
        row = gflops_row(perfs)
        assert len(row) == 2 and all(v > 0 for v in row)

    def test_format_series(self):
        s = format_series("x", [1.0, 2.0], "5.1f")
        assert s.endswith("  1.0   2.0")

    def test_format_table_with_peak(self, perfs):
        text = format_table(
            "demo", [1, 2], {"thiswork": perfs}, peak_series="thiswork"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "% peak" in lines[-1]

    def test_format_table_without_peak(self, perfs):
        text = format_table("demo", [1, 2], {"a": perfs})
        assert "% peak" not in text


class TestGraphCycleDetection:
    def test_cycle_rejected(self):
        topo = TopologySpec("cyclic")
        topo.add(LayerSpec("a", "Convolution", ["t_b"], ["t_a"],
                           {"num_output": 4}))
        topo.add(LayerSpec("b", "Convolution", ["t_a"], ["t_b"],
                           {"num_output": 4}))
        with pytest.raises(ReproError, match="cycle"):
            build_node_graph(topo)
