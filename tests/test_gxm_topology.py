"""Topology builder, text format, and parser (section II-L)."""

import pytest

from repro.gxm.parser import TopologyParseError, parse_topology
from repro.gxm.topology import LayerSpec, TopologySpec
from repro.models.resnet50 import resnet50_topology, resnet_mini_topology
from repro.types import ShapeError


class TestBuilder:
    def test_conv_defaults_same_padding(self):
        topo = TopologySpec("t")
        d = topo.data("data")
        topo.conv("c1", d, 16, 3)
        assert topo.layer("c1").attrs["pad"] == 1

    def test_conv_with_bn_relu_chain(self):
        topo = TopologySpec("t")
        d = topo.data("data")
        top = topo.conv("c1", d, 16, 3, relu=True, batchnorm=True)
        assert top == "c1_relu"
        assert topo.layer("c1_bn").bottoms == ["c1"]
        assert topo.layer("c1_relu").bottoms == ["c1_bn"]

    def test_eltwise_two_bottoms(self):
        topo = TopologySpec("t")
        d = topo.data("data")
        a = topo.conv("a", d, 16, 1)
        b = topo.conv("b", d, 16, 1)
        topo.eltwise("sum", a, b)
        assert topo.layer("sum").bottoms == ["a", "b"]

    def test_unknown_type_rejected(self):
        with pytest.raises(ShapeError):
            LayerSpec("x", "Deconvolution", [], [])

    def test_layer_lookup_missing(self):
        with pytest.raises(KeyError):
            TopologySpec("t").layer("nope")


class TestTextRoundTrip:
    def test_roundtrip_mini(self):
        topo = resnet_mini_topology()
        text = topo.to_text()
        back = parse_topology(text)
        assert back.name == topo.name
        assert len(back.layers) == len(topo.layers)
        for a, b in zip(topo.layers, back.layers):
            assert (a.name, a.type, a.bottoms, a.tops, a.attrs) == (
                b.name, b.type, b.bottoms, b.tops, b.attrs
            )

    def test_roundtrip_full_resnet50(self):
        topo = resnet50_topology()
        back = parse_topology(topo.to_text())
        assert len(back.layers) == len(topo.layers)

    def test_text_contains_protobuf_fields(self):
        text = resnet_mini_topology().to_text()
        assert 'layer {' in text
        assert 'type: "Convolution"' in text
        assert 'bottom: "data"' in text


class TestParser:
    def test_minimal(self):
        topo = parse_topology(
            """
            name: "tiny"
            layer { name: "data" type: "Data" top: "data" }
            layer {
              name: "fc" type: "InnerProduct"
              bottom: "data" top: "fc" num_output: 10
            }
            """
        )
        assert topo.name == "tiny"
        assert topo.layers[1].attrs["num_output"] == 10

    def test_comments_ignored(self):
        topo = parse_topology(
            """
            # a comment
            layer { name: "d" type: "Data" top: "d" }  # trailing
            """
        )
        assert topo.layers[0].name == "d"

    def test_float_and_bool_values(self):
        topo = parse_topology(
            'layer { name: "d" type: "Data" top: "d" ratio: 0.5 flag: true }'
        )
        assert topo.layers[0].attrs["ratio"] == 0.5
        assert topo.layers[0].attrs["flag"] is True

    def test_missing_required_field(self):
        with pytest.raises(TopologyParseError):
            parse_topology('layer { name: "x" top: "x" }')

    def test_unterminated_block(self):
        with pytest.raises(TopologyParseError):
            parse_topology('layer { name: "x" type: "Data" top: "x"')

    def test_empty(self):
        with pytest.raises(TopologyParseError):
            parse_topology("name: \"nothing\"")
