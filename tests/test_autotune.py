"""Autotuner, and evidence that the paper's heuristics are near-optimal."""

import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.blocking import choose_blocking
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.jit.autotune import autotune_blocking, _price
from repro.models.resnet50 import resnet50_layers
from tests.conftest import assert_close, rand_conv_tensors

# the module under test is a deprecated shim; every call warns by design
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestAutotune:
    def test_returns_feasible_plan(self):
        p = ConvParams(N=1, C=64, K=64, H=28, W=28, R=3, S=3, stride=1)
        res = autotune_blocking(p, SKX)
        assert res.plan.rb_p * res.plan.rb_q <= 28
        assert res.candidates > 5
        assert res.ranking[0][2] <= res.ranking[-1][2]

    @pytest.mark.parametrize("machine", [SKX, KNM], ids=lambda m: m.name)
    @pytest.mark.parametrize("lid", [4, 8, 13, 18, 5, 14])
    def test_heuristic_within_5pct_of_tuned(self, machine, lid):
        """The section II-B/D closed-form rules vs exhaustive search."""
        p = dict(resnet50_layers(28))[lid]
        res = autotune_blocking(p, machine)
        heur = choose_blocking(p, machine)
        heur_cpf = _price(
            p, machine, heur.rb_p, heur.rb_q,
            __import__("repro.types", fromlist=["DType"]).DType.F32,
        )
        assert heur_cpf <= res.cycles_per_flop * 1.06

    def test_tuned_plan_executes_correctly(self, rng):
        """A tuned plan drops into the engine and stays exact."""
        p = ConvParams(N=1, C=16, K=16, H=10, W=10, R=3, S=3, stride=1)
        res = autotune_blocking(p, SKX)
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX, threads=2, plan=res.plan)
        assert_close(eng.run_nchw(x, w), conv2d_forward(x, w, p))

    def test_q16_respects_halved_budget(self):
        from repro.types import DType

        p = ConvParams(N=1, C=32, K=32, H=28, W=28, R=3, S=3, stride=1)
        res = autotune_blocking(p, KNM, dtype=DType.QI16F32)
        assert res.plan.rb_p * res.plan.rb_q <= 13

    def test_single_chain_never_wins(self):
        """rb = 1x1 is latency-exposed; the tuner must avoid it whenever
        the layer allows more."""
        p = ConvParams(N=1, C=16, K=16, H=28, W=28, R=3, S=3, stride=1)
        res = autotune_blocking(p, SKX)
        assert res.plan.rb_p * res.plan.rb_q >= SKX.fma_ports * SKX.fma_latency

    def test_ranking_is_deterministic_with_stable_tiebreak(self):
        """Equal-cost candidates order on (rb_p, rb_q), so the ranking --
        and anything derived from it -- is identical run to run."""
        p = ConvParams(N=1, C=32, K=32, H=28, W=28, R=3, S=3, stride=1)
        a = autotune_blocking(p, SKX)
        b = autotune_blocking(p, SKX)
        assert a.ranking == b.ranking
        assert a.best == b.best
        keys = [(cpf, rb_p, rb_q) for rb_p, rb_q, cpf in a.ranking]
        assert keys == sorted(keys)

    def test_module_is_deprecated(self):
        p = ConvParams(N=1, C=16, K=16, H=10, W=10, R=3, S=3, stride=1)
        with pytest.warns(DeprecationWarning, match="repro.tune"):
            autotune_blocking(p, SKX)
