"""The Fig. 3 pipeline: NL -> ENL -> ENG -> PETG -> UETG -> ETG."""

import networkx as nx
import pytest

from repro.gxm.graph import (
    TaskRef,
    bin_tasks,
    build_node_graph,
    build_petg,
    compile_etg,
    dedup_tasks,
    extend_network,
)
from repro.gxm.topology import LayerSpec, TopologySpec
from repro.models.resnet50 import resnet_mini_topology
from repro.types import Pass, ReproError


def fanout_topo():
    """data feeds two convs joined by an eltwise (needs a Split)."""
    topo = TopologySpec("fan")
    d = topo.data("data")
    a = topo.conv("a", d, 16, 1)
    b = topo.conv("b", d, 16, 1)
    s = topo.eltwise("sum", a, b)
    topo.global_pool("gap", s)
    topo.fc("fc", "gap", 4)
    topo.loss("loss", "fc")
    return topo


class TestNLExtender:
    def test_split_inserted_for_fanout(self):
        enl = extend_network(fanout_topo())
        splits = [l for l in enl.layers if l.type == "Split"]
        assert len(splits) == 1
        assert splits[0].attrs["fanout"] == 2
        # consumers rewired to distinct split tops
        a = enl.layer("a")
        b = enl.layer("b")
        assert a.bottoms != b.bottoms
        assert a.bottoms[0].startswith("data__s")

    def test_no_split_for_single_consumer(self):
        topo = resnet_mini_topology()
        enl = extend_network(topo)
        # residual blocks create exactly the expected splits
        splits = [l for l in enl.layers if l.type == "Split"]
        assert len(splits) == 2  # one per bottleneck block input

    def test_original_untouched(self):
        topo = fanout_topo()
        n_before = len(topo.layers)
        extend_network(topo)
        assert len(topo.layers) == n_before
        assert topo.layer("a").bottoms == ["data"]

    def test_split_inserted_after_producer(self):
        enl = extend_network(fanout_topo())
        names = [l.name for l in enl.layers]
        assert names.index("data__split") == names.index("data") + 1


class TestNodeGraph:
    def test_edges_follow_dataflow(self):
        eng = build_node_graph(extend_network(fanout_topo()))
        assert eng.has_edge("data", "data__split")
        assert eng.has_edge("data__split", "a")
        assert eng.has_edge("a", "sum")
        assert nx.is_directed_acyclic_graph(eng)

    def test_dangling_bottom_rejected(self):
        topo = TopologySpec("bad")
        topo.add(LayerSpec("c", "Convolution", ["ghost"], ["c"],
                           {"num_output": 4}))
        with pytest.raises(ReproError, match="never produced"):
            build_node_graph(topo)

    def test_double_producer_rejected(self):
        topo = TopologySpec("bad")
        topo.data("x")
        topo.add(LayerSpec("c", "Convolution", ["x"], ["x"],
                           {"num_output": 4}))
        with pytest.raises(ReproError):
            build_node_graph(topo)


class TestPETG:
    def test_task_passes(self):
        petg = build_petg(build_node_graph(extend_network(fanout_topo())))
        kinds = {}
        for t in petg.nodes():
            kinds.setdefault(t.layer, set()).add(t.pass_)
        # conv nodes get all three passes
        assert kinds["a"] == {Pass.FWD, Pass.BWD, Pass.UPD}
        # data: forward only; pool: fwd+bwd
        assert kinds["data"] == {Pass.FWD}
        assert kinds["gap"] == {Pass.FWD, Pass.BWD}

    def test_dependency_directions(self):
        petg = build_petg(build_node_graph(extend_network(fanout_topo())))
        # FWD flows producer->consumer; BWD flows consumer->producer
        assert petg.has_edge(TaskRef("a", Pass.FWD), TaskRef("sum", Pass.FWD))
        assert petg.has_edge(TaskRef("sum", Pass.BWD), TaskRef("a", Pass.BWD))
        assert petg.has_edge(TaskRef("a", Pass.FWD), TaskRef("a", Pass.BWD))
        assert petg.has_edge(TaskRef("a", Pass.BWD), TaskRef("a", Pass.UPD))
        assert nx.is_directed_acyclic_graph(petg)


class TestETG:
    def test_bins_respect_dependencies(self):
        petg = build_petg(build_node_graph(extend_network(fanout_topo())))
        bins = bin_tasks(petg)
        level = {}
        for i, b in enumerate(bins):
            for t in b:
                level[t] = i
        for u, v in petg.edges():
            assert level[u] < level[v]

    def test_dedup(self):
        bins = [[TaskRef("a", Pass.FWD)], [TaskRef("a", Pass.FWD),
                                           TaskRef("b", Pass.FWD)]]
        order = dedup_tasks(bins)
        assert order == [TaskRef("a", Pass.FWD), TaskRef("b", Pass.FWD)]

    def test_full_pipeline_order_valid(self):
        enl, tasks = compile_etg(fanout_topo())
        pos = {t: i for i, t in enumerate(tasks)}
        # every layer's FWD precedes its BWD precedes its UPD
        for t in tasks:
            if t.pass_ is Pass.BWD:
                assert pos[TaskRef(t.layer, Pass.FWD)] < pos[t]
            if t.pass_ is Pass.UPD:
                assert pos[TaskRef(t.layer, Pass.BWD)] < pos[t]

    def test_task_count(self):
        enl, tasks = compile_etg(fanout_topo())
        convs = sum(1 for l in enl.layers if l.type == "Convolution")
        fcs = sum(1 for l in enl.layers if l.type == "InnerProduct")
        upd = sum(1 for t in tasks if t.pass_ is Pass.UPD)
        assert upd == convs + fcs  # gradient-exchange node types
