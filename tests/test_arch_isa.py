"""µop / KernelProgram structure tests."""

from repro.arch.isa import COMPUTE_OPS, MEMORY_OPS, KernelProgram, Op, Uop


class TestUop:
    def test_memory_classification(self):
        assert Uop(Op.VLOAD, dst=0, tensor="I").touches_memory()
        assert Uop(Op.PREFETCH2, tensor="I_pf").touches_memory()
        assert not Uop(Op.VFMA, dst=0, src1=1, src2=2).touches_memory()

    def test_compute_classification(self):
        assert Uop(Op.VFMA, dst=0, src1=1, src2=2).is_compute()
        assert Uop(Op.VMAX, dst=0, src1=0, src2=1).is_compute()
        assert not Uop(Op.VLOAD, dst=0, tensor="I").is_compute()

    def test_fma_family(self):
        for op in (Op.VFMA, Op.VFMA_MEM, Op.V4FMA, Op.VVNNI):
            assert Uop(op, dst=0, src1=1, tensor="I").is_fma()
        assert not Uop(Op.VADD, dst=0, src1=1, src2=2).is_fma()

    def test_classes_disjoint_for_pure_ops(self):
        assert Op.VFMA not in MEMORY_OPS
        assert Op.VLOAD not in COMPUTE_OPS
        # fused memory operand is deliberately in both
        assert Op.VFMA_MEM in MEMORY_OPS and Op.VFMA_MEM in COMPUTE_OPS


class TestKernelProgram:
    def _prog(self):
        uops = [
            Uop(Op.VZERO, dst=0),
            Uop(Op.VLOAD, dst=1, tensor="W", offset=0),
            Uop(Op.VBCAST, dst=2, tensor="I", offset=4),
            Uop(Op.VFMA, dst=0, src1=1, src2=2),
            Uop(Op.VSTORE, src1=0, tensor="O", offset=0),
        ]
        return KernelProgram(name="t", vlen=4, uops=uops, flops=8)

    def test_len_and_iter(self):
        p = self._prog()
        assert len(p) == 5
        assert sum(1 for _ in p) == 5

    def test_count(self):
        p = self._prog()
        assert p.count(Op.VLOAD, Op.VBCAST) == 2

    def test_fma_count(self):
        assert self._prog().fma_count == 1

    def test_max_register(self):
        assert self._prog().max_register() == 2

    def test_summary(self):
        s = self._prog().summary()
        assert s["VFMA"] == 1
        assert s["VLOAD"] == 1
