"""DirectConvForward: blocked engine + streams replay vs reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import KNM, SKX
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import BatchNormApply, Bias, EltwiseAdd, ReLU
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.tensor.blocked import block_activations, block_weights
from tests.conftest import TINY, assert_close, rand_conv_tensors

CASES = [
    ConvParams(N=2, C=32, K=32, H=10, W=10, R=3, S=3, stride=1),
    ConvParams(N=1, C=16, K=48, H=9, W=9, R=1, S=1, stride=1),
    ConvParams(N=2, C=32, K=64, H=8, W=8, R=1, S=1, stride=2),
    ConvParams(N=1, C=16, K=16, H=14, W=14, R=7, S=7, stride=2),
    ConvParams(N=1, C=16, K=16, H=9, W=7, R=3, S=5, stride=1),
    ConvParams(N=3, C=16, K=16, H=6, W=6, R=3, S=3, stride=3),
]


class TestAgainstReference:
    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    @pytest.mark.parametrize("machine", [SKX, KNM], ids=lambda m: m.name)
    def test_matches_reference(self, p, machine, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=machine, threads=3)
        assert_close(eng.run_nchw(x, w), conv2d_forward(x, w, p))

    @pytest.mark.parametrize("threads", [1, 2, 5, 16])
    def test_thread_count_invariance(self, threads, rng):
        p = CASES[0]
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX, threads=threads)
        assert_close(eng.run_nchw(x, w), conv2d_forward(x, w, p))

    @given(
        cb=st.integers(1, 2),
        kb=st.integers(1, 2),
        hw=st.integers(3, 9),
        r=st.sampled_from([1, 3]),
        stride=st.integers(1, 2),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_shapes_property(self, cb, kb, hw, r, stride):
        rng = np.random.default_rng(cb * 31 + kb * 7 + hw + r + stride)
        p = ConvParams(
            N=1, C=16 * cb, K=16 * kb, H=hw, W=hw, R=r, S=r, stride=stride
        )
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX, threads=2)
        assert_close(eng.run_nchw(x, w), conv2d_forward(x, w, p))


class TestFusion:
    def test_bias_relu(self, rng):
        p = CASES[0]
        x, w, _ = rand_conv_tensors(p, rng)
        bias = rng.standard_normal(p.K).astype(np.float32)
        eng = DirectConvForward(
            p, machine=SKX, threads=2, fused_ops=[Bias(bias), ReLU()]
        )
        ref = np.maximum(conv2d_forward(x, w, p) + bias[None, :, None, None], 0)
        assert_close(eng.run_nchw(x, w), ref)

    def test_batchnorm_apply(self, rng):
        p = CASES[1]
        x, w, _ = rand_conv_tensors(p, rng)
        gamma = rng.standard_normal(p.K).astype(np.float32)
        beta = rng.standard_normal(p.K).astype(np.float32)
        eng = DirectConvForward(
            p, machine=SKX, threads=2,
            fused_ops=[BatchNormApply(gamma, beta)],
        )
        ref = (
            conv2d_forward(x, w, p) * gamma[None, :, None, None]
            + beta[None, :, None, None]
        )
        assert_close(eng.run_nchw(x, w), ref)

    def test_eltwise_add_residual(self, rng):
        p = CASES[1]
        x, w, _ = rand_conv_tensors(p, rng)
        res = rng.standard_normal((p.N, p.K, p.P, p.Q)).astype(np.float32)
        from repro.tensor.layout import ActivationLayout

        olay = ActivationLayout(n=p.N, c=p.K, h=p.P, w=p.Q, vlen=16)
        res_blocked = block_activations(res, 16)
        eng = DirectConvForward(
            p, machine=SKX, threads=1,
            fused_ops=[EltwiseAdd(res_blocked.data)],
        )
        ref = conv2d_forward(x, w, p) + res
        assert_close(eng.run_nchw(x, w), ref)

    def test_apply_records_present_per_output_block(self, rng):
        p = CASES[0]
        eng = DirectConvForward(p, machine=SKX, threads=1, fused_ops=[ReLU()])
        stream = eng.streams[0]
        # one APPLY per conv call at the final c_b iteration
        spatial_calls = eng.kb * eng.pb * eng.qb * p.N
        assert stream.apply_calls == spatial_calls


class TestUopEquivalence:
    """The generated µop streams, replayed through the interpreter, must
    produce exactly what the numpy closures produce."""

    @pytest.mark.parametrize(
        "p",
        [
            ConvParams(N=1, C=8, K=8, H=5, W=5, R=3, S=3, stride=1),
            ConvParams(N=1, C=8, K=8, H=6, W=6, R=1, S=1, stride=2),
            ConvParams(N=1, C=4, K=8, H=4, W=5, R=2, S=3, stride=1,
                       pad_h=0, pad_w=0),
        ],
        ids=lambda p: p.describe(),
    )
    def test_uops_equal_numpy(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=TINY, threads=2)
        bx = block_activations(x, 4, pad_h=p.pad_h, pad_w=p.pad_w)
        bw = block_weights(w, 4)
        via_numpy = eng(bx, bw).to_nchw()
        via_uops = eng.execute_uops(bx, bw).to_nchw()
        assert_close(via_uops, via_numpy, rtol=1e-5)
        assert_close(via_numpy, conv2d_forward(x, w, p))

    def test_uops_with_fusion(self, rng):
        p = ConvParams(N=1, C=8, K=8, H=5, W=5, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        bias = rng.standard_normal(p.K).astype(np.float32)
        eng = DirectConvForward(
            p, machine=TINY, threads=1, fused_ops=[Bias(bias), ReLU()]
        )
        bx = block_activations(x, 4, pad_h=p.pad_h, pad_w=p.pad_w)
        bw = block_weights(w, 4)
        ref = np.maximum(conv2d_forward(x, w, p) + bias[None, :, None, None], 0)
        assert_close(eng.execute_uops(bx, bw).to_nchw(), ref)


class TestEngineSetup:
    def test_variant_count_with_remainders(self):
        # Q=10 with budget 16 -> rb_q=10 exact (divisor), one shape;
        # zero-init + accumulate for cb_outer
        p = ConvParams(N=1, C=32, K=16, H=10, W=10, R=3, S=3, stride=1)
        eng = DirectConvForward(p, machine=SKX)
        assert len(eng.variant_names) == 2

    def test_layout_mismatch_raises(self, rng):
        p = CASES[0]
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX)
        bad = block_activations(x, 16)  # missing padding
        from repro.types import ShapeError

        with pytest.raises(ShapeError):
            eng(bad, block_weights(w, 16))

    def test_total_calls_counts_all_threads(self):
        p = CASES[0]
        eng = DirectConvForward(p, machine=SKX, threads=4)
        cb = p.C // 16
        expect = p.N * (p.K // 16) * cb * eng.pb * eng.qb
        assert eng.total_conv_calls == expect
