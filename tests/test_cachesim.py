"""Cache simulator, and its agreement with the kernel footprint metadata."""

import numpy as np
import pytest

from repro.arch.machine import MachineConfig, SKX
from repro.cachesim.cache import Cache
from repro.cachesim.hierarchy import CacheHierarchy
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.interpreter import execute_kernel


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, assoc=2, line_bytes=64)
        assert not c.access(0)
        assert c.access(0)
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_lru_eviction(self):
        c = Cache(2 * 64, assoc=2, line_bytes=64)  # 1 set, 2 ways
        c.access(0)
        c.access(1)
        c.access(0)  # 0 is now MRU
        c.access(2)  # evicts 1
        assert c.access(0)
        assert not c.access(1)

    def test_writeback_on_dirty_eviction(self):
        c = Cache(2 * 64, assoc=2, line_bytes=64)
        c.access(0, write=True)
        c.access(1)
        c.access(2)  # evicts dirty 0
        assert c.stats.writebacks == 1

    def test_prefetch_fills_without_demand_miss(self):
        c = Cache(1024, assoc=2)
        c.access(5, prefetch=True)
        assert c.stats.misses == 0 and c.stats.prefetch_fills == 1
        assert c.access(5)
        assert c.stats.prefetched_hits == 1

    def test_capacity(self):
        c = Cache(4096, assoc=4, line_bytes=64)
        for i in range(64):
            c.access(i)
        assert c.resident_lines() == 64
        c.access(1000)
        assert c.resident_lines() == 64  # full: evictions started

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(1000, assoc=3, line_bytes=64)

    def test_flush_writes_back_dirty(self):
        c = Cache(1024, assoc=2)
        c.access(0, write=True)
        c.access(1)
        c.flush()
        assert c.stats.writebacks == 1
        assert c.resident_lines() == 0


class TestHierarchy:
    def _machine(self):
        return MachineConfig(
            name="T", cores=1, freq_hz=1e9, l1_bytes=1024, l2_bytes=4096,
            llc_bytes=0, l1_assoc=2, l2_assoc=4,
        )

    def test_l1_hit_stops_walk(self):
        h = CacheHierarchy(self._machine())
        h.touch("I", 0, 16, "load")
        h.touch("I", 0, 16, "load")
        assert h.l1.stats.hits >= 1
        assert h.l2.stats.accesses == h.l1.stats.misses

    def test_tensors_get_disjoint_regions(self):
        h = CacheHierarchy(self._machine())
        h.touch("I", 0, 16, "load")
        h.touch("W", 0, 16, "load")
        assert h.l1.stats.misses == 2  # no aliasing

    def test_prefetch2_fills_l2_only(self):
        h = CacheHierarchy(self._machine())
        h.touch("I_pf", 0, 1, "prefetch2")
        assert h.l2.stats.prefetch_fills == 1
        assert h.l1.resident_lines() == 0
        # demand access now misses L1 but hits L2
        h.touch("I", 0, 1, "load")
        assert h.l2.stats.hits == 1

    def test_traffic_report(self):
        h = CacheHierarchy(self._machine())
        for off in range(0, 64 * 16, 16):
            h.touch("I", off, 16, "load")
        t = h.traffic()
        assert t.l1_fill == h.l1.stats.misses * 64
        assert t.l2_fill == h.l2.stats.misses * 64


class TestKernelTrafficValidation:
    """The µop stream's demand misses on a cold hierarchy must equal the
    number of distinct cache lines its memory trace touches -- this is the
    mechanistic anchor for the analytic traffic model (DESIGN.md section 6).
    """

    @pytest.mark.parametrize("rb_q,r,cbu", [(3, 3, 1), (5, 1, 2), (2, 2, 1)])
    def test_cold_misses_equal_distinct_lines(self, rng, rb_q, r, cbu):
        vlen = 4
        desc = ConvKernelDesc(
            vlen=vlen, rb_p=1, rb_q=rb_q, R=r, S=r, stride=1,
            i_strides=(4096, 64, 4), w_strides=(4096, 256, 64, 4),
            o_strides=(64, 4), cb_unroll=cbu, zero_init=True,
        )
        prog = generate_conv_kernel(desc)
        machine = MachineConfig(
            name="T", cores=1, freq_hz=1e9, l1_bytes=32 * 1024,
            l2_bytes=1 << 20,
        )
        h = CacheHierarchy(machine)
        bufs = {
            "I": rng.standard_normal(32768).astype(np.float32),
            "W": rng.standard_normal(32768).astype(np.float32),
            "O": np.zeros(32768, dtype=np.float32),
        }
        trace = []
        execute_kernel(prog, bufs, {}, trace=trace, touch=h.touch)
        # distinct (tensor, line) pairs among demand accesses
        lines = set()
        for tensor, off, count, kind in trace:
            if kind.startswith("prefetch"):
                continue
            base = off * 4
            for la in range(base // 64, (base + count * 4 - 1) // 64 + 1):
                lines.add((tensor, la))
        assert h.l1.stats.misses == len(lines)
        # and the declared element footprints bound the distinct lines
        total_fp_bytes = 4 * (
            sum(prog.reads.values()) + sum(prog.writes.values())
        )
        assert len(lines) * 64 <= total_fp_bytes + 64 * len(
            {t for t, _ in lines}
        ) * 8

    def test_prefetched_next_call_hits_l2(self, rng):
        """Section II-E's payoff, observed in simulation: after call i
        prefetches call i+1's operands, call i+1's L2 lookups hit."""
        vlen = 4
        desc = ConvKernelDesc(
            vlen=vlen, rb_p=1, rb_q=4, R=1, S=1, stride=1,
            i_strides=(4096, 64, 4), w_strides=(4096, 256, 64, 4),
            o_strides=(64, 4), zero_init=True, prefetch="l2",
        )
        prog = generate_conv_kernel(desc)
        machine = MachineConfig(
            name="T", cores=1, freq_hz=1e9, l1_bytes=4096, l2_bytes=1 << 18
        )
        h = CacheHierarchy(machine)
        bufs = {
            "I": rng.standard_normal(32768).astype(np.float32),
            "W": rng.standard_normal(32768).astype(np.float32),
            "O": np.zeros(32768, dtype=np.float32),
        }
        # call 0 at offset 0 prefetches call 1's operands at offset 1024
        execute_kernel(
            prog, bufs,
            {"I": 0, "W": 0, "O": 0, "I_pf": 1024, "W_pf": 1024, "O_pf": 1024},
            touch=h.touch,
        )
        l2_misses_before = h.l2.stats.misses
        execute_kernel(
            prog, bufs,
            {"I": 1024, "W": 1024, "O": 1024,
             "I_pf": 1024, "W_pf": 1024, "O_pf": 1024},
            touch=h.touch,
        )
        # second call's demand L2 misses are (almost) all covered
        assert h.l2.stats.misses - l2_misses_before <= 1
        assert h.l2.stats.prefetched_hits > 0
