"""Layout stride/offset math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.layout import ActivationLayout, WeightLayout
from repro.types import ShapeError


class TestActivationLayout:
    def test_shape_and_size(self):
        lay = ActivationLayout(n=2, c=8, h=5, w=6, vlen=4)
        assert lay.shape == (2, 2, 5, 6, 4)
        assert lay.size == 2 * 8 * 5 * 6

    def test_offsets_match_numpy(self):
        lay = ActivationLayout(n=2, c=8, h=3, w=4, vlen=4)
        arr = np.arange(lay.size).reshape(lay.shape)
        for idx in [(0, 0, 0, 0, 0), (1, 1, 2, 3, 3), (0, 1, 1, 0, 2)]:
            assert lay.offset(*idx) == arr[idx]

    def test_c_not_divisible(self):
        with pytest.raises(ShapeError, match="not divisible"):
            ActivationLayout(n=1, c=10, h=2, w=2, vlen=4)

    def test_nonpositive(self):
        with pytest.raises(ShapeError):
            ActivationLayout(n=0, c=4, h=2, w=2, vlen=4)

    @given(
        n=st.integers(1, 3),
        cb=st.integers(1, 3),
        h=st.integers(1, 5),
        w=st.integers(1, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_offset_bijective(self, n, cb, h, w):
        """Distinct coordinates map to distinct flat offsets."""
        lay = ActivationLayout(n=n, c=cb * 4, h=h, w=w, vlen=4)
        seen = set()
        for nn in range(n):
            for cc in range(cb):
                for hh in range(h):
                    for ww in range(w):
                        off = lay.offset(nn, cc, hh, ww)
                        assert off not in seen
                        seen.add(off)
        assert max(seen) + 4 <= lay.size  # room for the VLEN block


class TestWeightLayout:
    def test_shape(self):
        lay = WeightLayout(k=8, c=8, r=3, s=3, vlen=4)
        assert lay.shape == (2, 2, 3, 3, 4, 4)
        assert lay.size == 8 * 8 * 9

    def test_offsets_match_numpy(self):
        lay = WeightLayout(k=8, c=8, r=3, s=2, vlen=4)
        arr = np.arange(lay.size).reshape(lay.shape)
        for idx in [(0, 0, 0, 0, 0, 0), (1, 1, 2, 1, 3, 2), (0, 1, 1, 0, 2, 1)]:
            assert lay.offset(*idx) == arr[idx]

    def test_innermost_is_k(self):
        lay = WeightLayout(k=8, c=8, r=1, s=1, vlen=4)
        assert lay.strides[-1] == 1  # k stride
        assert lay.strides[-2] == 4  # c stride = vlen

    def test_k_not_divisible(self):
        with pytest.raises(ShapeError):
            WeightLayout(k=6, c=4, r=1, s=1, vlen=4)
