"""Execution tiers: the compiled tier must be *bitwise* identical to the
µop interpreter on every generated variant, and the tier plumbing
(engines, factory, cache, verify mode, trace fallback) must behave."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX, MachineConfig
from repro.conv.backward import DirectConvBackward
from repro.conv.engine import make_engine
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import Bias, ReLU
from repro.conv.params import ConvParams
from repro.conv.upd import DirectConvUpd
from repro.jit.compile import (
    EXECUTION_TIERS,
    CompiledKernel,
    TierMismatchError,
    compile_kernel,
    get_default_execution_tier,
    resolve_execution_tier,
    set_default_execution_tier,
)
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.interpreter import execute_kernel
from repro.jit.kernel_cache import KernelCache
from repro.jit.streamcompile import compile_stream
from repro.jit.tiers import (
    ExecutionTier,
    ReplayOptions,
    UnknownTierError,
    as_tier,
    degrade_chain,
    get_tier_spec,
    tier_registry,
)
from repro.quant.qconv_engine import QuantConvForward
from repro.quant.qtensor import quantize
from repro.conv.reference import conv2d_forward
from repro.tensor.blocked import block_activations, block_weights
from repro.types import ReproError
from tests.conftest import TINY, assert_close, rand_conv_tensors

#: TINY with a memory bandwidth so the §II-J update-strategy model can run
TINY_BW = MachineConfig(name="TINYBW", cores=4, freq_hz=1e9, vlen_bits=128,
                        mem_bw=1e10)

#: layer shapes exercising every µop generator feature on the VLEN=4 machine:
#: multi-row pixel blocking, 1x1, strides, asymmetric taps, remainders
FWD_CASES = [
    ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1, pad_h=1, pad_w=1),
    ConvParams(N=2, C=4, K=8, H=5, W=5, R=1, S=1, stride=1),
    ConvParams(N=1, C=8, K=4, H=7, W=7, R=1, S=1, stride=2),
    ConvParams(N=1, C=4, K=4, H=6, W=7, R=2, S=3, stride=1),
    ConvParams(N=1, C=8, K=8, H=9, W=9, R=3, S=3, stride=2, pad_h=1, pad_w=1),
]


def _fwd_out(p, rng, tier, **kw):
    x, w, _ = rand_conv_tensors(p, rng)
    eng = DirectConvForward(p, machine=TINY, execution_tier=tier, **kw)
    bx = block_activations(x, 4, pad_h=p.pad_h, pad_w=p.pad_w)
    bw = block_weights(w, 4)
    return eng(bx, bw).data, x, w


class TestForwardTiers:
    @pytest.mark.parametrize("tier", ["compiled", "stream_compiled"])
    @pytest.mark.parametrize("p", FWD_CASES, ids=lambda p: p.describe())
    def test_compiled_bitwise_equals_interpreter(self, p, tier, rng):
        out_c, x, w = _fwd_out(p, rng, tier)
        rng2 = np.random.default_rng(1234)
        out_i, _, _ = _fwd_out(p, rng2, "interpret")
        assert np.array_equal(out_c.view(np.uint32), out_i.view(np.uint32))
        eng = DirectConvForward(p, machine=TINY)
        assert_close(
            eng.run_nchw(x, w), conv2d_forward(x, w, p), rtol=1e-4
        )

    def test_fused_ops_and_threads(self, rng):
        p = ConvParams(N=2, C=8, K=8, H=6, W=6, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        x, w, _ = rand_conv_tensors(p, rng)
        bias = rng.standard_normal(p.K).astype(np.float32)
        outs = {}
        for tier in ("compiled", "stream_compiled", "interpret"):
            eng = DirectConvForward(
                p, machine=TINY, threads=2, fused_ops=[Bias(bias), ReLU()],
                execution_tier=tier,
            )
            bx = block_activations(x, 4, pad_h=p.pad_h, pad_w=p.pad_w)
            bw = block_weights(w, 4)
            outs[tier] = eng(bx, bw, parallel=(tier != "interpret")).data
        assert np.array_equal(
            outs["compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
        assert np.array_equal(
            outs["stream_compiled"].view(np.uint32),
            outs["interpret"].view(np.uint32),
        )
        ref = np.maximum(
            conv2d_forward(x, w, p) + bias[None, :, None, None], 0
        )
        eng = DirectConvForward(p, machine=TINY, threads=2,
                                fused_ops=[Bias(bias), ReLU()])
        assert_close(eng.run_nchw(x, w), ref, rtol=1e-4)

    def test_verify_tier_runs_clean(self, rng):
        p = FWD_CASES[0]
        out_v, x, w = _fwd_out(p, rng, "verify")
        rng2 = np.random.default_rng(1234)
        out_c, _, _ = _fwd_out(p, rng2, "compiled")
        assert np.array_equal(out_v, out_c)

    def test_einsum_tier_close_but_independent(self, rng):
        p = FWD_CASES[0]
        out_e, x, w = _fwd_out(p, rng, "einsum")
        rng2 = np.random.default_rng(1234)
        out_c, _, _ = _fwd_out(p, rng2, "compiled")
        assert_close(out_e, out_c, rtol=1e-4)


class TestQuantTiers:
    def test_q16_tiers_bitwise_identical(self, rng):
        p = ConvParams(N=1, C=32, K=32, H=6, W=6, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        x, w, _ = rand_conv_tensors(p, rng, scale=0.3)
        qx, qw = quantize(x), quantize(w)
        outs = {}
        for machine in (KNM, SKX):  # 4VNNIW quad form and pair form
            for tier in ("compiled", "stream_compiled", "interpret"):
                eng = QuantConvForward(p, machine=machine,
                                       execution_tier=tier)
                outs[tier] = eng.run_quantized(qx, qw)
            assert np.array_equal(
                outs["compiled"].view(np.uint32),
                outs["interpret"].view(np.uint32),
            )
            assert np.array_equal(
                outs["stream_compiled"].view(np.uint32),
                outs["interpret"].view(np.uint32),
            )
            eng = QuantConvForward(p, machine=machine,
                                   execution_tier="einsum")
            assert_close(eng.run_quantized(qx, qw), outs["compiled"],
                         rtol=1e-4)

    def test_q16_verify_tier(self, rng):
        p = ConvParams(N=1, C=32, K=32, H=4, W=4, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        x, w, _ = rand_conv_tensors(p, rng, scale=0.3)
        eng = QuantConvForward(p, machine=KNM, execution_tier="verify")
        out = eng.run_quantized(quantize(x), quantize(w))
        assert np.isfinite(out).all()


class TestUpdTiers:
    def test_upd_tiers_bitwise_identical(self, rng):
        p = ConvParams(N=2, C=8, K=8, H=6, W=6, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        x, _, dy = rand_conv_tensors(p, rng)
        dws = {}
        for tier in ("compiled", "stream_compiled", "interpret"):
            eng = DirectConvUpd(p, machine=TINY_BW, threads=2,
                                execution_tier=tier)
            dws[tier] = eng.run_nchw(x, dy)
        assert np.array_equal(
            dws["compiled"].view(np.uint32),
            dws["interpret"].view(np.uint32),
        )
        assert np.array_equal(
            dws["stream_compiled"].view(np.uint32),
            dws["interpret"].view(np.uint32),
        )
        eng = DirectConvUpd(p, machine=TINY_BW, threads=2,
                            execution_tier="einsum")
        assert_close(eng.run_nchw(x, dy), dws["compiled"], rtol=1e-4)

    def test_upd_verify_tier(self, rng):
        p = ConvParams(N=1, C=4, K=4, H=5, W=5, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        x, _, dy = rand_conv_tensors(p, rng)
        eng = DirectConvUpd(p, machine=TINY_BW, execution_tier="verify")
        dw = eng.run_nchw(x, dy)
        assert np.isfinite(dw).all()


class TestBackwardTiers:
    def test_duality_modes_thread_the_tier(self, rng):
        for p in (
            ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1),
            ConvParams(N=1, C=8, K=4, H=6, W=6, R=1, S=1, stride=2),
        ):
            _, w, dy = rand_conv_tensors(p, rng)
            dis = {}
            for tier in ("compiled", "interpret"):
                eng = DirectConvBackward(p, machine=TINY,
                                         execution_tier=tier)
                assert eng.engine.execution_tier == tier
                dis[tier] = eng.run_nchw(dy, w)
            assert np.array_equal(
                dis["compiled"].view(np.uint32),
                dis["interpret"].view(np.uint32),
            )

    def test_gemm_fallback_accepts_the_knob(self, rng):
        p = ConvParams(N=1, C=4, K=4, H=7, W=7, R=3, S=3, stride=2)
        eng = DirectConvBackward(p, machine=TINY, execution_tier="compiled")
        assert eng.mode == "gemm" and eng.execution_tier == "compiled"


class TestTraceForcesInterpreter:
    def test_bind_with_trace_returns_interpreter_tier(self, rng):
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        eng = DirectConvForward(p, machine=TINY)
        x, w, _ = rand_conv_tensors(p, rng)
        bx = block_activations(x, 4)
        bw = block_weights(w, 4)
        o = np.zeros(eng.out_layout.size, dtype=np.float32)
        buffers = {"I": bx.data, "W": bw.data, "O": o}
        ck = eng.compiled[0]
        assert ck is not None and ck.tier == "compiled"
        trace = []
        fn = ck.bind(buffers, trace=trace)
        assert fn.tier == "interpret"
        fn(0, 0, 0, 0, 0, 0)
        ref_trace = []
        execute_kernel(
            eng.programs[0], dict(buffers, O=o.copy()),
            {"I": 0, "W": 0, "O": 0, "I_pf": 0, "W_pf": 0, "O_pf": 0},
            trace=ref_trace,
        )
        assert trace == ref_trace


class TestCompiledKernelStandalone:
    def test_gemm_program_compiles_exactly(self, rng):
        desc = GemmDesc(vlen=4, k=3, n=5, a_sk=4, b_sk=1, b_sn=3, c_sn=4)
        prog = generate_gemm_kernel(desc)
        a = rng.standard_normal(12).astype(np.float32)
        b = rng.standard_normal(15).astype(np.float32)
        c = rng.standard_normal(20).astype(np.float32)
        ref = c.copy()
        execute_kernel(prog, {"A": a, "B": b, "C": ref}, {})
        got = c.copy()
        ck = compile_kernel(prog)
        ck({"A": a, "B": b, "C": got})
        assert np.array_equal(got.view(np.uint32), ref.view(np.uint32))
        assert isinstance(ck, CompiledKernel)
        assert sorted(ck.tensors) == ["A", "B", "C"]


class TestTierSelection:
    def test_default_tier_roundtrip(self):
        prev = set_default_execution_tier("interpret")
        try:
            assert get_default_execution_tier() == "interpret"
            assert resolve_execution_tier(None) == "interpret"
        finally:
            set_default_execution_tier(prev)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ReproError, match="unknown execution tier"):
            resolve_execution_tier("turbo")
        with pytest.raises(ReproError, match="unknown execution tier"):
            set_default_execution_tier("turbo")
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        with pytest.raises(ReproError, match="unknown execution tier"):
            DirectConvForward(p, machine=TINY, execution_tier="turbo")

    def test_make_engine_passes_the_tier(self):
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        for pass_ in ("fwd", "upd", "bwd"):
            eng = make_engine(pass_, p, machine=TINY_BW,
                              execution_tier="interpret")
            assert eng.execution_tier == "interpret"
        assert EXECUTION_TIERS == ("compiled", "interpret", "einsum",
                                   "verify", "stream_compiled")
        assert TierMismatchError is not None

    def test_cache_tracks_compiled_variants(self):
        cache = KernelCache()
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        DirectConvForward(p, machine=TINY, kernel_cache=cache)
        st = cache.stats()
        assert st["compiled_variants"] >= 1
        assert st["compiled_misses"] >= 1
        DirectConvForward(p, machine=TINY, kernel_cache=cache)
        assert cache.stats()["compiled_hits"] >= 1

    def test_cache_tracks_stream_programs(self):
        cache = KernelCache()
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        eng = DirectConvForward(p, machine=TINY, kernel_cache=cache,
                                execution_tier="stream_compiled")
        meta = eng.prepare_stream_compiled()
        assert meta["conv_calls"] > 0
        st = cache.stats()
        assert st["stream_programs"] >= 1
        assert st["stream_chunks"] >= 1


class TestTierRegistry:
    def test_registry_covers_every_tier(self):
        reg = tier_registry()
        assert set(reg) == set(ExecutionTier)
        for tier, spec in reg.items():
            assert spec.tier is tier
            assert spec.description

    def test_as_tier_coerces_strings_and_enums(self):
        assert as_tier("stream_compiled") is ExecutionTier.STREAM_COMPILED
        assert as_tier(ExecutionTier.COMPILED) is ExecutionTier.COMPILED
        # the enum doubles as its string spelling (legacy call sites
        # compare with ==, format with f-strings)
        assert as_tier("compiled") == "compiled"
        assert f"{ExecutionTier.STREAM_COMPILED}" == "stream_compiled"

    def test_unknown_tier_is_valueerror_listing_tiers(self):
        with pytest.raises(UnknownTierError) as ei:
            as_tier("turbo")
        assert isinstance(ei.value, ValueError)
        for name in EXECUTION_TIERS:
            assert name in str(ei.value)

    def test_tier_capabilities(self):
        assert get_tier_spec("compiled").batchable
        assert not get_tier_spec("compiled").trace_safe
        assert get_tier_spec("interpret").trace_safe
        assert get_tier_spec("interpret").degrade_to is None
        spec = get_tier_spec("stream_compiled")
        assert spec.batchable and not spec.trace_safe
        assert spec.degrade_to is ExecutionTier.COMPILED

    def test_degrade_chain_walks_to_interpreter(self):
        assert degrade_chain("stream_compiled") == [
            ExecutionTier.COMPILED, ExecutionTier.INTERPRET
        ]
        assert degrade_chain("compiled") == [ExecutionTier.INTERPRET]
        assert degrade_chain("interpret") == []


class TestReplayOptions:
    def test_resolve_tier_passthrough(self):
        opts = ReplayOptions(tier="stream_compiled")
        assert opts.resolve_tier() is ExecutionTier.STREAM_COMPILED

    def test_trace_forces_a_trace_safe_tier(self):
        opts = ReplayOptions(tier="stream_compiled", trace=True)
        assert opts.resolve_tier() is ExecutionTier.INTERPRET
        assert ReplayOptions(tier="interpret", trace=True).resolve_tier() \
            is ExecutionTier.INTERPRET

    def test_unset_tier_resolves_process_default(self):
        prev = set_default_execution_tier("einsum")
        try:
            assert ReplayOptions().resolve_tier() is ExecutionTier.EINSUM
        finally:
            set_default_execution_tier(prev)

    def test_unknown_tier_rejected_at_construction(self):
        with pytest.raises(ReproError, match="unknown execution tier"):
            ReplayOptions(tier="turbo")

    def test_make_engine_accepts_replay_bundle(self):
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        eng = make_engine("fwd", p, machine=TINY,
                          replay=ReplayOptions(tier="stream_compiled"))
        assert eng.execution_tier == "stream_compiled"
        # explicit kwarg wins over the bundle
        eng = make_engine("fwd", p, machine=TINY, execution_tier="interpret",
                          replay=ReplayOptions(tier="stream_compiled"))
        assert eng.execution_tier == "interpret"


class TestStreamCompiledLowering:
    def test_trace_forces_interpreter_stream_program(self, rng):
        p = ConvParams(N=1, C=4, K=4, H=4, W=4, R=1, S=1, stride=1)
        eng = DirectConvForward(p, machine=TINY)
        proto = {"I": np.empty(0, np.float32), "W": np.empty(0, np.float32),
                 "O": np.empty(0, np.float32)}
        trace = []
        prog = compile_stream(eng.streams[0], eng.segments[0], eng.compiled,
                              eng.programs, proto, trace=trace)
        assert prog.tier == "interpret"
        assert prog.meta["fallback_calls"] == prog.meta["conv_calls"] > 0

    def test_stream_program_meta_counts_calls(self):
        p = ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1,
                       pad_h=1, pad_w=1)
        eng = DirectConvForward(p, machine=TINY,
                                execution_tier="stream_compiled")
        meta = eng.prepare_stream_compiled()
        assert meta["tier"] == "stream_compiled"
        assert meta["conv_calls"] == eng.total_conv_calls
        assert meta["chunks"] + meta["single_calls"] > 0
        assert meta["fallback_calls"] == 0

    def test_repeated_replays_reuse_scratch_bitwise(self, rng):
        p = FWD_CASES[0]
        x, w, _ = rand_conv_tensors(p, rng)
        eng_s = DirectConvForward(p, machine=TINY,
                                  execution_tier="stream_compiled")
        eng_i = DirectConvForward(p, machine=TINY,
                                  execution_tier="interpret")
        for _ in range(3):
            bx = block_activations(x, 4, pad_h=p.pad_h, pad_w=p.pad_w)
            bw = block_weights(w, 4)
            out_s = eng_s(bx, bw).data
            out_i = eng_i(bx, bw).data
            assert np.array_equal(
                out_s.view(np.uint32), out_i.view(np.uint32)
            )
            x = x + 0.25  # next replay sees different data, same closures
