"""Lifecycle chaos soak: sustained load through drains, reloads,
rollbacks, slow workers and tight deadlines.

Gated behind ``REPRO_SOAK=1`` (CI's ``lifecycle-smoke`` job runs it; a
plain ``pytest`` does not).  For ~30 seconds (``REPRO_SOAK_S``), client
threads hammer one server through :class:`ServeClient` while an
operator thread cycles drain -> resume -> reload; a fault plan keeps
workers intermittently slow and fails the first few reload canaries.

The soak's invariants are the PR's acceptance criteria, held under
sustained chaos rather than in one-shot tests:

* every request terminates in bounded time with a vocabulary outcome
  (probs / shed / deadline / timeout / closed) -- never a hang, never a
  foreign exception;
* every successful answer is bitwise one of the two legitimate weight
  sets (old or new) -- a half-swapped replica would show up here;
* canary-failed reloads roll back (old weights keep serving), the
  successful one swaps;
* every canary rollback froze exactly one digest-verified
  :mod:`repro.forensics` incident bundle, and a sampled
  ``incident replay`` of the survivors is bitwise-exact;
* the metrics JSON written at the end (``REPRO_SOAK_OUT``) is the CI
  artifact for post-mortems.
"""

import json
import os
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.gxm.checkpoint import save_checkpoint
from repro.gxm.inference import InferenceSession
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serve import (
    CanaryError,
    ClientConfig,
    DeadlineExceeded,
    InferenceServer,
    RequestShed,
    ServeClient,
    ServeConfig,
    ServerClosed,
)

pytestmark = [
    pytest.mark.skipif(
        os.environ.get("REPRO_SOAK") != "1",
        reason="chaos soak runs only with REPRO_SOAK=1 (see CI "
               "lifecycle-smoke)",
    ),
    pytest.mark.timeout(300),
]

SOAK_S = float(os.environ.get("REPRO_SOAK_S", "30"))
OUT = os.environ.get("REPRO_SOAK_OUT", "soak_lifecycle_metrics.json")
#: canary-failing reload attempts before reloads start succeeding
ROLLBACKS = 2


def _reference(cfg, checkpoint, x):
    from repro.gxm.checkpoint import load_checkpoint

    etg = cfg.build_etg(1)
    load_checkpoint(etg, checkpoint)
    with InferenceSession(etg) as sess:
        return sess.predict(x[None])[0].copy()


def test_lifecycle_chaos_soak(tmp_path):
    inc_dir = str(tmp_path / "incidents")
    cfg = ServeConfig(buckets=(1, 2, 4), workers=2, batch_window_ms=1.0,
                      queue_capacity=64, max_queue_wait_ms=250.0)
    ck_a = str(tmp_path / "a.npz")
    ck_b = str(tmp_path / "b.npz")
    save_checkpoint(replace(cfg, seed=11).build_etg(1), ck_a)
    save_checkpoint(replace(cfg, seed=22).build_etg(1), ck_b)
    x = np.random.default_rng(3).standard_normal(
        cfg.input_shape
    ).astype(np.float32)
    ref_a = _reference(cfg, ck_a, x)
    ref_b = _reference(cfg, ck_b, x)
    assert not np.array_equal(ref_a, ref_b)

    plan = FaultPlan((
        # intermittent slow workers for the whole soak: ages batches
        # toward their deadlines and exercises the EWMA backpressure
        FaultSpec(site="serve.worker.slow", kind="slow", delay_s=0.02,
                  probability=0.25, count=10**6),
        # the first ROLLBACKS reload canaries fail deterministically
        FaultSpec(site="serve.reload.canary_fail", kind="canary_fail",
                  count=ROLLBACKS),
    ))
    server = InferenceServer(
        replace(cfg, checkpoint=ck_a, incident_dir=inc_dir,
                recorder=4096),
        fault_injector=FaultInjector(plan),
    )
    server.start()

    outcomes = {"ok": 0, "shed": 0, "deadline": 0, "timeout": 0,
                "closed": 0}
    foreign_errors: list = []
    bad_outputs = 0
    lock = threading.Lock()
    stop = threading.Event()
    client = ServeClient(server, config=ClientConfig(
        timeout_s=5.0, max_retries=2, backoff_base_s=0.005,
        backoff_max_s=0.05,
    ))

    def hammer(idx):
        # half the clients run with a tight-ish deadline, half without
        deadline_ms = 150.0 if idx % 2 == 0 else None
        nonlocal bad_outputs
        while not stop.is_set():
            try:
                out = client.predict(x, deadline_ms=deadline_ms)
                good = (np.array_equal(out, ref_a)
                        or np.array_equal(out, ref_b))
                with lock:
                    outcomes["ok"] += 1
                    if not good:
                        bad_outputs += 1
            except RequestShed:
                with lock:
                    outcomes["shed"] += 1
            except DeadlineExceeded:
                with lock:
                    outcomes["deadline"] += 1
            except TimeoutError:
                with lock:
                    outcomes["timeout"] += 1
            except ServerClosed:
                with lock:
                    outcomes["closed"] += 1
            except Exception as err:  # noqa: BLE001 -- the invariant
                with lock:
                    foreign_errors.append(repr(err))

    ops_log: list[dict] = []

    def operator():
        """drain -> resume -> reload, round-robin, until time is up."""
        targets = [ck_b, ck_a]
        i = 0
        while not stop.wait(max(1.0, SOAK_S / 8)):
            try:
                report = server.drain(timeout_s=5.0)
                ops_log.append({"op": "drain", **report})
                server.resume()
                target = targets[i % 2]
                i += 1
                try:
                    r = server.reload_checkpoint(target)
                    ops_log.append({"op": "reload", "ok": True,
                                    "checkpoint": target,
                                    "duration_s": r["duration_s"]})
                except CanaryError as err:
                    ops_log.append({"op": "reload", "ok": False,
                                    "checkpoint": target,
                                    "error": str(err)})
            except Exception as err:  # noqa: BLE001 -- must be visible
                ops_log.append({"op": "operator_error",
                                "error": repr(err)})

    clients = [threading.Thread(target=hammer, args=(i,), daemon=True)
               for i in range(6)]
    ops = threading.Thread(target=operator, daemon=True)
    for t in clients:
        t.start()
    ops.start()
    time.sleep(SOAK_S)
    stop.set()
    for t in clients:
        t.join(timeout=30.0)
        assert not t.is_alive(), "client thread hung past the soak"
    ops.join(timeout=30.0)
    assert not ops.is_alive(), "operator thread hung past the soak"
    stats = server.stats()
    health = server.health()
    server.stop()

    doc = {
        "soak_s": SOAK_S,
        "outcomes": outcomes,
        "bad_outputs": bad_outputs,
        "foreign_errors": foreign_errors,
        "ops": ops_log,
        "client": client.stats(),
        "server_counters": stats["counters"],
        "server_gauges": stats["gauges"],
        "health": health,
    }
    with open(OUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)

    # --- the invariants -------------------------------------------------
    assert not foreign_errors, foreign_errors[:5]
    assert bad_outputs == 0, (
        f"{bad_outputs} responses matched neither weight set bitwise"
    )
    assert outcomes["ok"] > 0, "the soak served nothing"
    counters = stats["counters"]
    reload_oks = [op for op in ops_log
                  if op["op"] == "reload" and op.get("ok")]
    reload_fails = [op for op in ops_log
                    if op["op"] == "reload" and not op.get("ok", True)]
    assert len(reload_fails) == counters.get("serve.reload.rollbacks", 0)
    assert len(reload_oks) == counters.get("serve.reloads", 0)
    # the injected canary failures hit exactly the first ROLLBACKS
    # attempts; everything after swaps cleanly
    attempts = len(reload_oks) + len(reload_fails)
    assert len(reload_fails) == min(ROLLBACKS, attempts)
    assert not [op for op in ops_log if op["op"] == "operator_error"], (
        [op for op in ops_log if op["op"] == "operator_error"][:3]
    )
    # the server came out of the soak serving, not wedged
    assert health["status"] in ("ok", "degraded")
    assert health["live_workers"] >= 1

    # forensics: every canary rollback froze exactly one digest-verified
    # bundle (never a capture failure), and a sampled replay rebuilds
    # the rejected engine bitwise
    from repro.forensics import list_incidents, replay_incident

    assert counters.get("forensics.bundle_errors", 0) == 0
    rows = list_incidents(inc_dir)
    bad = [r for r in rows if not r["valid"]]
    assert not bad, f"invalid bundles after the soak: {bad[:3]}"
    assert len(rows) == counters.get("serve.reload.rollbacks", 0), (
        f"{len(rows)} bundles for "
        f"{counters.get('serve.reload.rollbacks', 0)} rollbacks"
    )
    for row in rows[:2]:
        rep = replay_incident(row["path"])
        assert rep["ok"] and rep["mode"] == "serve"
