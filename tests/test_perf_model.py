"""The performance model must reproduce the paper's qualitative results.

These are the "shape" assertions of EXPERIMENTS.md: who wins, by what
factor bands, and where the architecture-specific effects appear.
"""

import statistics

import pytest

from repro.arch.machine import KNM, SKX
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from repro.perf.traffic import forward_traffic
from repro.conv.blocking import choose_blocking
from repro.types import DType


@pytest.fixture(scope="module")
def skx_model():
    return ConvPerfModel(SKX)


@pytest.fixture(scope="module")
def knm_model():
    return ConvPerfModel(KNM)


def layers(machine):
    return resnet50_layers(70 if machine is KNM else 28)


R3_IDS = [4, 8, 13, 18]
R1_S1_IDS = [3, 5, 9, 10, 14, 15, 19, 20]  # stride-1 1x1 layers


class TestFig4SkxForward:
    def test_3x3_layers_near_80_percent(self, skx_model):
        """Section III-A: R=3 layers achieve ~80% of peak on SKX."""
        for lid, p in layers(SKX):
            if lid in R3_IDS:
                eff = skx_model.estimate_forward(p).efficiency
                assert 0.70 <= eff <= 0.90, f"layer {lid}: {eff:.2f}"

    def test_1x1_layers_near_70_percent(self, skx_model):
        """R=1 layers ~70% of peak (lower operational intensity)."""
        effs = [
            skx_model.estimate_forward(p).efficiency
            for lid, p in layers(SKX)
            if lid in R1_S1_IDS
        ]
        assert 0.60 <= statistics.mean(effs) <= 0.80

    def test_3x3_beats_1x1_efficiency(self, skx_model):
        r3 = statistics.mean(
            skx_model.estimate_forward(p).efficiency
            for lid, p in layers(SKX) if lid in R3_IDS
        )
        r1 = statistics.mean(
            skx_model.estimate_forward(p).efficiency
            for lid, p in layers(SKX) if lid in R1_S1_IDS
        )
        assert r3 > r1

    def test_layers_2_3_are_the_low_band(self, skx_model):
        """Layers 2-3 ~55%: few input maps + big output writes."""
        effs = [
            skx_model.estimate_forward(p).efficiency
            for lid, p in layers(SKX)
            if lid in (2, 3)
        ]
        assert 0.40 <= statistics.mean(effs) <= 0.68
        all_eff = [
            skx_model.estimate_forward(p).efficiency for _, p in layers(SKX)
        ]
        assert min(effs) == min(all_eff)

    def test_mkl_band(self, skx_model):
        """Majority similar; MKL up to ~20-25% faster in several cases
        (fused-memop penalty), this work ahead on write-bound layers."""
        ratios = []
        for lid, p in layers(SKX):
            tw = skx_model.estimate_forward(p).time_s
            mk = skx_model.estimate_forward(p, impl="mkl").time_s
            ratios.append(mk / tw)
        assert min(ratios) >= 0.75  # MKL never more than ~1.3x faster
        assert max(ratios) <= 1.45  # this work never more than ~1.4x faster
        assert any(r > 1.05 for r in ratios)  # some wins for this work
        assert any(r < 0.95 for r in ratios)  # some wins for MKL


class TestFig6KnmForward:
    def test_3x3_layers_70_to_80(self, knm_model):
        for lid, p in layers(KNM):
            if lid in R3_IDS:
                eff = knm_model.estimate_forward(p).efficiency
                assert 0.65 <= eff <= 0.85, f"layer {lid}: {eff:.2f}"

    def test_1x1_layers_near_55(self, knm_model):
        effs = [
            knm_model.estimate_forward(p).efficiency
            for lid, p in layers(KNM)
            if lid in R1_S1_IDS
        ]
        assert 0.35 <= statistics.mean(effs) <= 0.60

    def test_knm_1x1_below_skx_1x1(self, skx_model, knm_model):
        """The section III-B roofline story: 1x1 efficiency drops on KNM
        (L2-bound regime) but not on SKX."""
        for lid in (9, 14, 19):
            ps = dict(layers(SKX))[lid]
            pk = dict(layers(KNM))[lid]
            assert (
                knm_model.estimate_forward(pk).efficiency
                < skx_model.estimate_forward(ps).efficiency
            )

    def test_mkl_similar_on_knm(self, knm_model):
        """Same instruction sequence -> similar performance (III-B)."""
        for lid, p in layers(KNM):
            tw = knm_model.estimate_forward(p).time_s
            mk = knm_model.estimate_forward(p, impl="mkl").time_s
            assert 0.85 <= mk / tw <= 1.25


class TestFig5Backward:
    def test_bwd_tracks_fwd(self, skx_model):
        """Duality: backward ~= forward except stride-2 layers."""
        for lid, p in layers(SKX):
            if p.stride == 1:
                f = skx_model.estimate_forward(p).efficiency
                b = skx_model.estimate_backward(p).efficiency
                assert abs(f - b) < 0.22, f"layer {lid}"

    def test_stride2_dips(self, skx_model):
        """Input gradients expand in size -> higher write bandwidth."""
        table = dict(layers(SKX))
        p7 = table[7]  # 1x1 stride 2
        f = skx_model.estimate_forward(p7).efficiency
        b = skx_model.estimate_backward(p7).efficiency
        assert b < f


class TestFig5bUpdate:
    def test_skx_upd_10_to_15_below_fwd(self, skx_model):
        """Weight reduction cost: upd efficiency ~10-15% below fwd."""
        gaps = []
        for lid, p in layers(SKX):
            if lid in R3_IDS + R1_S1_IDS:
                f = skx_model.estimate_forward(p).efficiency
                u = skx_model.estimate_update(p).efficiency
                gaps.append(f - u)
        assert -0.05 <= statistics.mean(gaps) <= 0.25

    def test_knm_upd_range_20_to_55(self, knm_model):
        """Section III-B: KNM upd efficiency 20-55% (no LLC to absorb the
        reduction + the 4FMA transpose)."""
        effs = [
            knm_model.estimate_update(p).efficiency for _, p in layers(KNM)
        ]
        assert 0.10 <= min(effs)
        assert max(effs) <= 0.60
        assert 0.15 <= statistics.mean(effs) <= 0.45

    def test_knm_upd_well_below_fwd(self, knm_model):
        for lid, p in layers(KNM):
            if lid in R3_IDS:
                f = knm_model.estimate_forward(p).efficiency
                u = knm_model.estimate_update(p).efficiency
                assert u < f


class TestFig8ReducedPrecision:
    def test_fwd_avg_speedup(self, knm_model):
        sp = [
            knm_model.estimate_forward(p).time_s
            / knm_model.estimate_forward(p, dtype=DType.QI16F32).time_s
            for _, p in layers(KNM)
        ]
        assert 1.45 <= statistics.mean(sp) <= 1.8  # paper: 1.63

    def test_bwd_avg_speedup(self, knm_model):
        sp = [
            knm_model.estimate_backward(p).time_s
            / knm_model.estimate_backward(p, dtype=DType.QI16F32).time_s
            for _, p in layers(KNM)
        ]
        assert 1.3 <= statistics.mean(sp) <= 1.8  # paper: 1.58

    def test_upd_avg_speedup(self, knm_model):
        sp = [
            knm_model.estimate_update(p).time_s
            / knm_model.estimate_update(p, dtype=DType.QI16F32).time_s
            for _, p in layers(KNM)
        ]
        assert 1.15 <= statistics.mean(sp) <= 1.5  # paper: 1.3

    def test_never_reaches_2x(self, knm_model):
        """32-bit outputs + chain limits keep speedup below the 2x ideal."""
        for _, p in layers(KNM):
            sp = (
                knm_model.estimate_forward(p).time_s
                / knm_model.estimate_forward(p, dtype=DType.QI16F32).time_s
            )
            assert sp < 2.2


class TestTrafficModel:
    def test_strided_1x1_touches_quarter(self):
        p = dict(layers(SKX))[7]  # 1x1 stride 2
        plan = choose_blocking(p, SKX)
        t2 = forward_traffic(p, plan, SKX, 28)
        p1 = dict(layers(SKX))[5]  # 1x1 stride 1, same C
        plan1 = choose_blocking(p1, SKX)
        t1 = forward_traffic(p1, plan1, SKX, 28)
        # same input tensor, but the strided layer reads ~1/4 of it
        assert t2.llc_read + t2.mem_read < t1.llc_read + t1.mem_read

    def test_weights_l1_residency_flag(self):
        table = dict(layers(SKX))
        p3x3 = table[4]
        p1x1_wide = table[15]  # C=1024: call working set exceeds L1
        t_a = forward_traffic(p3x3, choose_blocking(p3x3, SKX), SKX, 28)
        t_b = forward_traffic(
            p1x1_wide, choose_blocking(p1x1_wide, SKX), SKX, 28
        )
        assert t_a.notes["weights_l1_resident"]
        assert not t_b.notes["weights_l1_resident"]

    def test_fusion_saves_l2_traffic(self):
        """prefetch=False adds exposed-miss time; streams=False adds call
        overhead -- both must slow the estimate (ablation sanity)."""
        model = ConvPerfModel(SKX)
        p = dict(layers(SKX))[4]
        base = model.estimate_forward(p).time_s
        no_pf = model.estimate_forward(p, prefetch=False).time_s
        no_streams = model.estimate_forward(p, streams=False).time_s
        assert no_pf > base
        assert no_streams > base
