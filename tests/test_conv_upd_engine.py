"""DirectConvUpd: Algorithm 9 + section II-J strategies."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_update_weights
from repro.conv.upd import DirectConvUpd
from repro.parallel.wu_strategies import upd_strategy_traffic
from tests.conftest import assert_close, rand_conv_tensors

CASES = [
    ConvParams(N=2, C=16, K=32, H=8, W=8, R=3, S=3, stride=1),
    ConvParams(N=4, C=16, K=16, H=6, W=6, R=1, S=1, stride=1),
    ConvParams(N=1, C=32, K=16, H=9, W=9, R=1, S=1, stride=2),
    ConvParams(N=3, C=16, K=16, H=10, W=10, R=3, S=3, stride=2),
    ConvParams(N=1, C=16, K=16, H=14, W=14, R=7, S=7, stride=2),
]


class TestCorrectness:
    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    @pytest.mark.parametrize("machine", [SKX, KNM], ids=lambda m: m.name)
    def test_matches_reference(self, p, machine, rng):
        x, _, dy = rand_conv_tensors(p, rng)
        upd = DirectConvUpd(p, machine=machine, threads=4)
        assert_close(upd.run_nchw(x, dy), conv2d_update_weights(x, dy, p))

    @pytest.mark.parametrize("ncopies", [1, 2, 4])
    def test_strategies_numerically_equivalent(self, ncopies, rng):
        """Shared vs per-thread-copies vs hybrid must agree (section II-J:
        same operations, different data movement)."""
        p = ConvParams(N=4, C=16, K=16, H=8, W=8, R=3, S=3, stride=1)
        x, _, dy = rand_conv_tensors(p, rng)
        strat = upd_strategy_traffic(p, SKX, threads=4, ncopies=ncopies)
        upd = DirectConvUpd(p, machine=SKX, threads=4, strategy=strat)
        assert_close(upd.run_nchw(x, dy), conv2d_update_weights(x, dy, p))

    def test_blocking_plan_applied(self):
        p = ConvParams(N=1, C=16, K=16, H=112, W=112, R=3, S=3, stride=1)
        upd = DirectConvUpd(p, machine=SKX)
        # large spatial extent must be blocked below P (section II-J)
        assert upd.plan.b_p < p.P

    def test_small_layer_uses_full_spatial_block(self):
        p = ConvParams(N=1, C=16, K=16, H=7, W=7, R=3, S=3, stride=1)
        upd = DirectConvUpd(p, machine=SKX)
        assert upd.plan.b_p == p.P and upd.plan.b_q == p.Q
