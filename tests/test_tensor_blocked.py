"""BlockedTensor conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.blocked import BlockedTensor, block_activations, block_weights
from repro.tensor.layout import ActivationLayout
from repro.types import ShapeError


class TestActivationRoundTrip:
    def test_roundtrip_no_pad(self, rng):
        x = rng.standard_normal((2, 8, 5, 6)).astype(np.float32)
        bt = block_activations(x, vlen=4)
        assert np.array_equal(bt.to_nchw(), x)

    def test_roundtrip_with_pad(self, rng):
        x = rng.standard_normal((1, 4, 3, 3)).astype(np.float32)
        bt = block_activations(x, vlen=4, pad_h=2, pad_w=1)
        assert bt.layout.h == 7 and bt.layout.w == 5
        assert np.array_equal(bt.to_nchw(), x)

    def test_padding_is_zero(self, rng):
        x = rng.standard_normal((1, 4, 3, 3)).astype(np.float32) + 10.0
        bt = block_activations(x, vlen=4, pad_h=1, pad_w=1)
        v = bt.view()
        assert np.all(v[:, :, 0, :, :] == 0)
        assert np.all(v[:, :, :, 0, :] == 0)
        assert np.all(v[:, :, -1, :, :] == 0)

    def test_blocked_order(self, rng):
        """Element (n, c, h, w) lands at (n, c//v, h, w, c%v)."""
        x = rng.standard_normal((1, 8, 2, 2)).astype(np.float32)
        bt = block_activations(x, vlen=4)
        v = bt.view()
        assert v[0, 1, 1, 0, 2] == x[0, 6, 1, 0]

    def test_bad_rank(self):
        with pytest.raises(ShapeError):
            block_activations(np.zeros((4, 4, 4)), vlen=4)

    def test_c_not_multiple(self):
        with pytest.raises(ShapeError):
            block_activations(np.zeros((1, 6, 2, 2)), vlen=4)

    @given(
        n=st.integers(1, 2),
        cb=st.integers(1, 3),
        h=st.integers(1, 4),
        w=st.integers(1, 4),
        ph=st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n, cb, h, w, ph):
        rng = np.random.default_rng(n * 100 + cb)
        x = rng.standard_normal((n, cb * 4, h, w)).astype(np.float32)
        bt = block_activations(x, vlen=4, pad_h=ph, pad_w=ph)
        assert np.array_equal(bt.to_nchw(), x)


class TestWeightRoundTrip:
    def test_roundtrip(self, rng):
        w = rng.standard_normal((8, 12, 3, 3)).astype(np.float32)
        bt = block_weights(w, vlen=4)
        assert np.array_equal(bt.to_kcrs(), w)

    def test_blocked_order(self, rng):
        """W[k, c, r, s] lands at (k//v, c//v, r, s, c%v, k%v)."""
        w = rng.standard_normal((8, 8, 2, 2)).astype(np.float32)
        bt = block_weights(w, vlen=4)
        assert bt.view()[1, 0, 1, 0, 3, 2] == w[6, 3, 1, 0]

    def test_wrong_conversion_direction(self, rng):
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        bt = block_activations(x, vlen=4)
        with pytest.raises(ShapeError):
            bt.to_kcrs()
        w = rng.standard_normal((4, 4, 1, 1)).astype(np.float32)
        bw = block_weights(w, vlen=4)
        with pytest.raises(ShapeError):
            bw.to_nchw()


class TestBlockedTensor:
    def test_size_mismatch(self):
        lay = ActivationLayout(n=1, c=4, h=2, w=2, vlen=4)
        with pytest.raises(ShapeError):
            BlockedTensor(np.zeros(10, dtype=np.float32), lay)

    def test_copy_is_independent(self, rng):
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        bt = block_activations(x, vlen=4)
        cp = bt.copy()
        cp.data[:] = 0
        assert not np.array_equal(bt.data, cp.data)

    def test_zero_(self, rng):
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        bt = block_activations(x, vlen=4)
        bt.zero_()
        assert np.all(bt.data == 0)
