"""Kernel streams: record, encode, replay (section II-H)."""

import numpy as np
import pytest

from repro.arch.machine import SKX
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import ReLU
from repro.conv.params import ConvParams
from repro.streams.rle import SegmentKind, encode_segments
from repro.streams.replay import replay
from repro.streams.stream import APPLY_CALL, KernelStream
from repro.types import ReproError


def make_stream(pattern):
    """pattern: list of 'c' (conv) and 'a' (apply)."""
    st = KernelStream()
    for i, ch in enumerate(pattern):
        if ch == "c":
            st.record_conv(0, 10 * i, 20 * i, 30 * i)
        else:
            st.record_apply(0, 30 * i, kb=1, variant=0)
    return st.freeze()


class TestRecording:
    def test_counts(self):
        s = make_stream("cccac")
        assert s.conv_calls == 4
        assert s.apply_calls == 1
        assert len(s) == 5

    def test_conv_variant_validation(self):
        st = KernelStream()
        with pytest.raises(ReproError):
            st.record_conv(-2, 0, 0, 0)

    def test_apply_carries_kb_and_variant(self):
        st = KernelStream()
        st.record_apply(3, o_off=99, kb=5, variant=2)
        f = st.freeze()
        assert f.kinds[0] == APPLY_CALL
        assert f.w_off[0] == 5 and f.i_off[0] == 2 and f.apply_op[0] == 3


class TestRle:
    def test_streaks_and_applies(self):
        segs = encode_segments(make_stream("cccacca"))
        kinds = [(s.kind, s.info) for s in segs]
        assert kinds == [
            (SegmentKind.CONV_STREAK, 3),
            (SegmentKind.APPLY, 0),
            (SegmentKind.CONV_STREAK, 2),
            (SegmentKind.APPLY, 0),
        ]

    def test_all_conv(self):
        segs = encode_segments(make_stream("cccc"))
        assert len(segs) == 1 and segs[0].info == 4

    def test_empty(self):
        assert encode_segments(make_stream("")) == []

    def test_segments_cover_stream(self):
        s = make_stream("cacacac")
        segs = encode_segments(s)
        covered = sum(
            seg.info if seg.kind is SegmentKind.CONV_STREAK else 1
            for seg in segs
        )
        assert covered == len(s)


class TestReplay:
    def test_prefetch_chaining_fig1(self):
        """Call i's prefetch args must equal call i+1's compute args."""
        s = make_stream("ccc")
        segs = encode_segments(s)
        calls = []

        def kernel(i, w, o, pi, pw, po):
            calls.append((i, w, o, pi, pw, po))

        n = replay(s, segs, [kernel], [])
        assert n == 3
        for t in range(2):
            assert calls[t][3:] == calls[t + 1][:3]
        # last call prefetches itself (nothing left to fetch)
        assert calls[2][3:] == calls[2][:3]

    def test_prefetch_skips_apply_records(self):
        """The next *conv* call's offsets are prefetched across APPLYs."""
        s = make_stream("cac")
        segs = encode_segments(s)
        calls = []
        applies = []
        replay(
            s,
            segs,
            [lambda i, w, o, pi, pw, po: calls.append((i, pi))],
            [lambda o, kb: applies.append((o, kb))],
        )
        assert len(calls) == 2 and len(applies) == 1
        assert calls[0][1] == calls[1][0]  # prefetch skipped the APPLY

    def test_apply_dispatch(self):
        st = KernelStream()
        st.record_conv(0, 1, 2, 3)
        st.record_apply(1, o_off=3, kb=7, variant=0)
        s = st.freeze()
        hits = []
        replay(
            s,
            encode_segments(s),
            [lambda *a: None],
            [lambda o, kb: hits.append(("op0", o, kb)),
             lambda o, kb: hits.append(("op1", o, kb))],
        )
        assert hits == [("op1", 3, 7)]


class TestEngineStreams:
    """Stream structure produced by a real layer's dryrun."""

    def test_per_thread_disjoint_outputs(self):
        p = ConvParams(N=2, C=16, K=32, H=8, W=8, R=3, S=3, stride=1)
        eng = DirectConvForward(p, machine=SKX, threads=4)
        all_o = set()
        for s in eng.streams:
            offs = {int(o) for k, o in zip(s.kinds, s.o_off) if k >= 0}
            # threads write disjoint output blocks except across cb passes
            all_o |= offs
        # total distinct output offsets = N*Kb*Pb*Qb
        assert len(all_o) == 2 * 2 * eng.pb * eng.qb

    def test_fused_streams_interleave(self):
        p = ConvParams(N=1, C=32, K=16, H=8, W=8, R=3, S=3, stride=1)
        eng = DirectConvForward(p, machine=SKX, threads=1, fused_ops=[ReLU()])
        segs = eng.segments[0]
        kinds = [s.kind for s in segs]
        assert SegmentKind.APPLY in kinds
        assert SegmentKind.CONV_STREAK in kinds
        # an APPLY only ever follows conv work (never leads)
        assert kinds[0] is SegmentKind.CONV_STREAK

    def test_replay_is_deterministic(self, rng):
        p = ConvParams(N=1, C=16, K=16, H=6, W=6, R=3, S=3, stride=1)
        x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
        w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
        eng = DirectConvForward(p, machine=SKX, threads=2)
        y1 = eng.run_nchw(x, w)
        y2 = eng.run_nchw(x, w)
        assert np.array_equal(y1, y2)
