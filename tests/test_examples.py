"""Smoke tests: every example must run to completion as a script."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

#: slower examples run with trimmed argv/expectations but still execute
FAST_ENOUGH = {
    "quickstart.py",
    "kernel_streams_demo.py",
    "jit_kernel_tour.py",
    "cache_hierarchy_study.py",
    "inference_and_checkpoint.py",
    "train_synthetic_cnn.py",
    "quantized_inference.py",
    "multinode_scaling.py",
    "resnet50_layer_benchmark.py",
}


def test_every_example_is_covered():
    names = {p.name for p in EXAMPLES}
    assert names == FAST_ENOUGH, (
        "new example? add it to the smoke list so CI runs it"
    )


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path, monkeypatch, capsys):
    if path.name == "resnet50_layer_benchmark.py":
        # restrict to one machine to keep the smoke test quick
        monkeypatch.setattr(sys, "argv", [str(path), "SKX"])
    else:
        monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
