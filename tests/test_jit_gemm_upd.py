"""Small-GEMM and weight-update kernel generators: µop streams must compute
the right linear algebra when interpreted."""

import numpy as np
import pytest

from repro.arch.isa import Op
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.interpreter import execute_kernel
from repro.jit.upd_codegen import UpdKernelDesc, generate_upd_kernel
from tests.conftest import assert_close


class TestGemmKernel:
    @pytest.mark.parametrize("n", [1, 3, 7])
    @pytest.mark.parametrize("k", [2, 4])
    def test_matches_matmul(self, rng, n, k):
        vlen = 4
        desc = GemmDesc(
            vlen=vlen, k=k, n=n, a_sk=vlen, b_sk=1, b_sn=k, c_sn=vlen
        )
        prog = generate_gemm_kernel(desc)
        a = rng.standard_normal((k, vlen)).astype(np.float32)  # col-major A
        b = rng.standard_normal((n, k)).astype(np.float32)
        c = rng.standard_normal((n, vlen)).astype(np.float32)
        expect = c + b @ a
        bufs = {"A": a.reshape(-1), "B": b.reshape(-1), "C": c.reshape(-1).copy()}
        execute_kernel(prog, bufs, {})
        assert_close(bufs["C"].reshape(n, vlen), expect)

    def test_zero_init(self, rng):
        vlen = 4
        desc = GemmDesc(
            vlen=vlen, k=3, n=2, a_sk=vlen, b_sk=1, b_sn=3, c_sn=vlen,
            zero_init=True,
        )
        prog = generate_gemm_kernel(desc)
        a = rng.standard_normal((3, vlen)).astype(np.float32)
        b = rng.standard_normal((2, 3)).astype(np.float32)
        c = np.full(2 * vlen, 99.0, dtype=np.float32)
        bufs = {"A": a.reshape(-1), "B": b.reshape(-1), "C": c}
        execute_kernel(prog, bufs, {})
        assert_close(c.reshape(2, vlen), b @ a)

    def test_n_blocking_splits_accumulators(self):
        desc = GemmDesc(
            vlen=4, k=2, n=10, a_sk=4, b_sk=1, b_sn=2, c_sn=4, nb=4
        )
        prog = generate_gemm_kernel(desc)
        # 3 accumulator groups (4+4+2): A reloaded per group
        aloads = sum(1 for u in prog.uops if u.tensor == "A")
        assert aloads == 3 * 2

    def test_flops(self):
        desc = GemmDesc(vlen=4, k=3, n=5, a_sk=4, b_sk=1, b_sn=3, c_sn=4)
        assert generate_gemm_kernel(desc).flops == 2 * 4 * 3 * 5

    def test_strided_c_columns(self, rng):
        """Algorithm 7 writes dI columns on the stride grid (c_sn > vlen)."""
        vlen, n, k, stride = 4, 3, 2, 2
        desc = GemmDesc(
            vlen=vlen, k=k, n=n, a_sk=vlen, b_sk=1, b_sn=k,
            c_sn=stride * vlen,
        )
        prog = generate_gemm_kernel(desc)
        a = rng.standard_normal((k, vlen)).astype(np.float32)
        b = rng.standard_normal((n, k)).astype(np.float32)
        c = np.zeros(n * stride * vlen, dtype=np.float32)
        execute_kernel(prog, {"A": a.reshape(-1), "B": b.reshape(-1), "C": c}, {})
        got = c.reshape(n * stride, vlen)[::stride]
        assert_close(got, b @ a)
        assert np.all(c.reshape(n * stride, vlen)[1::stride] == 0)


class TestUpdKernel:
    @pytest.mark.parametrize("bp,bq,stride", [(2, 3, 1), (1, 4, 2), (3, 2, 1)])
    def test_matches_outer_product_sum(self, rng, bp, bq, stride):
        vlen = 4
        i_sh, i_sw = 50, 5
        o_sh, o_sw = 40, 4
        desc = UpdKernelDesc(
            vlen=vlen, b_p=bp, b_q=bq, stride=stride,
            i_strides=(i_sh, i_sw), o_strides=(o_sh, o_sw), zero_init=True,
        )
        prog = generate_upd_kernel(desc)
        ibuf = rng.standard_normal(2000).astype(np.float32)
        obuf = rng.standard_normal(2000).astype(np.float32)
        dw = np.zeros(vlen * vlen, dtype=np.float32)
        execute_kernel(prog, {"I": ibuf, "dO": obuf, "dW": dw}, {})
        expect = np.zeros((vlen, vlen), dtype=np.float32)
        for p in range(bp):
            for q in range(bq):
                do = obuf[p * o_sh + q * o_sw :][:vlen]
                for c in range(vlen):
                    iv = ibuf[p * stride * i_sh + q * stride * i_sw + c]
                    expect[c] += do * iv
        assert_close(dw.reshape(vlen, vlen), expect)

    def test_vlen_independent_chains(self):
        """The paper's point: VLEN accumulators = VLEN independent chains."""
        desc = UpdKernelDesc(
            vlen=4, b_p=2, b_q=2, stride=1, i_strides=(8, 4),
            o_strides=(8, 4),
        )
        prog = generate_upd_kernel(desc)
        dsts = {u.dst for u in prog.uops if u.is_fma()}
        assert len(dsts) == 4

    def test_fused_memop_variant(self):
        plain = generate_upd_kernel(
            UpdKernelDesc(vlen=4, b_p=1, b_q=2, stride=1,
                          i_strides=(8, 4), o_strides=(8, 4))
        )
        fused = generate_upd_kernel(
            UpdKernelDesc(vlen=4, b_p=1, b_q=2, stride=1,
                          i_strides=(8, 4), o_strides=(8, 4),
                          fused_memop=True)
        )
        assert plain.count(Op.VBCAST) > 0
        assert fused.count(Op.VBCAST) == 0
        assert fused.count(Op.VFMA_MEM) == plain.count(Op.VFMA)

    def test_accumulate_mode_loads_dw(self, rng):
        desc = UpdKernelDesc(
            vlen=4, b_p=1, b_q=1, stride=1, i_strides=(8, 4),
            o_strides=(8, 4), zero_init=False,
        )
        prog = generate_upd_kernel(desc)
        dw = np.ones(16, dtype=np.float32)
        ibuf = np.zeros(64, dtype=np.float32)
        obuf = np.zeros(64, dtype=np.float32)
        execute_kernel(prog, {"I": ibuf, "dO": obuf, "dW": dw}, {})
        assert np.all(dw == 1.0)  # zero contribution, preserved accumulation
