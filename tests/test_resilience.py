"""The fault matrix: every injectable fault, every recovery guarantee.

Tentpole tests for :mod:`repro.resilience` -- deterministic fault
injection wired through process-parallel training (crash / hang /
corrupt-message / NaN-gradient at named sites), exact-to-the-step
checkpoint resume, and the serving layer's graceful degradation
(corrupt warm artifact -> cold boot, worker crash -> supervisor
restart, compiled-tier failure -> interpret fallback).

The headline invariant, asserted bitwise throughout: a training run
that loses workers mid-step and recovers finishes with weights
*identical* to an undisturbed run (``degrade_policy="recompute"``), and
a run killed and resumed from its autosave reproduces the undisturbed
trajectory exactly.
"""

from __future__ import annotations

import io
import os
import signal
import time

import numpy as np
import pytest

from repro.gxm.checkpoint import (
    load_training_checkpoint,
    save_training_checkpoint,
)
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.gxm.parser import parse_topology
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology
from repro.obs.metrics import get_metrics
from repro.resilience import (
    DivergenceError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    WorkerFailure,
    corrupt_file,
)
from repro.types import ReproError

pytestmark = pytest.mark.timeout(120)

SHAPE = (3, 8, 8)
CLASSES = 4


def tiny_topology():
    return resnet_mini_topology(num_classes=CLASSES, width=8)


def tiny_dataset(n=24, seed=3):
    return SyntheticImageDataset(
        n=n, num_classes=CLASSES, shape=SHAPE, seed=seed
    )


def tiny_trainer(**kw):
    etg = ExecutionTaskGraph(
        parse_topology(tiny_topology().to_text()),
        (4, *SHAPE),
        engine="fast",
        seed=0,
    )
    return Trainer(etg, lr=0.05, **kw)


def weights_of(etg):
    return [p.copy() for p in etg.params()]


@pytest.fixture
def clean_metrics():
    get_metrics().clear()
    yield get_metrics()
    get_metrics().clear()


# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_fires_only_at_matching_site_step_rank(self, clean_metrics):
        plan = FaultPlan(
            specs=(FaultSpec(site="s", kind="crash", step=2, rank=1),)
        )
        inj = FaultInjector(plan)
        assert inj.fire("other", step=2, rank=1) is None
        assert inj.fire("s", step=1, rank=1) is None
        assert inj.fire("s", step=2, rank=0) is None
        spec = inj.fire("s", step=2, rank=1)
        assert spec is not None and spec.kind == "crash"
        # count=1: armed exactly once
        assert inj.fire("s", step=2, rank=1) is None
        assert not inj.enabled
        assert clean_metrics.value("resilience.faults_injected") == 1

    def test_probability_draws_are_seeded(self, clean_metrics):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="s", kind="crash", count=100, probability=0.5
                ),
            ),
            seed=42,
        )
        inj_a, inj_b = FaultInjector(plan), FaultInjector(plan)
        a = [inj_a.fire("s") is not None for _ in range(40)]
        b = [inj_b.fire("s") is not None for _ in range(40)]
        assert a == b  # same plan => same seeded draw sequence
        assert any(a) and not all(a)

    def test_injector_pickles_via_plan(self):
        import pickle

        plan = FaultPlan(specs=(FaultSpec(site="s", kind="hang"),))
        clone = pickle.loads(pickle.dumps(FaultInjector(plan)))
        assert clone.plan == plan
        assert clone.fire("s") is not None

    def test_rejects_unknown_kind_and_bad_probability(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultSpec(site="s", kind="meteor")
        with pytest.raises(ReproError, match="probability"):
            FaultSpec(site="s", kind="crash", probability=0.0)

    def test_corrupt_file_is_deterministic(self, tmp_path):
        p1, p2 = tmp_path / "a.bin", tmp_path / "b.bin"
        payload = bytes(range(256)) * 8
        p1.write_bytes(payload)
        p2.write_bytes(payload)
        assert corrupt_file(str(p1), n_bytes=32) == 32
        corrupt_file(str(p2), n_bytes=32)
        assert p1.read_bytes() == p2.read_bytes()
        assert p1.read_bytes() != payload


# ---------------------------------------------------------------------------
class TestProcessParallelFaultMatrix:
    """Injected worker faults; recovery must be bit-identical under the
    default ``recompute`` degrade policy."""

    def _healthy_weights(self, ds):
        t = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=3,
                                   seed=0)
        try:
            t.fit(ds, batch_size=2, epochs=1)
            return weights_of(t.root), list(t.metrics.losses)
        finally:
            t.close()

    def _faulted_run(self, ds, plan, **kw):
        kw.setdefault("step_timeout", 15.0)
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=3, seed=0,
            fault_plan=plan, **kw,
        )
        try:
            t.fit(ds, batch_size=2, epochs=1)
            return t, weights_of(t.root), list(t.metrics.losses)
        finally:
            t.close()

    @pytest.mark.parametrize(
        "kind,timeout",
        [("crash", 15.0), ("hang", 1.0), ("corrupt_message", 15.0)],
    )
    def test_worker_fault_recovers_bit_identical(
        self, clean_metrics, kind, timeout
    ):
        ds = tiny_dataset()
        ref_w, ref_losses = self._healthy_weights(ds)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="mp.worker.step", kind=kind, step=2, rank=1
                ),
            )
        )
        t, w, losses = self._faulted_run(ds, plan, step_timeout=timeout)
        assert clean_metrics.value("resilience.degraded_steps") == 1
        assert clean_metrics.value("resilience.respawns") == 1
        assert [f.rank for f in t.failures] == [1]
        assert losses == ref_losses
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))

    def test_external_sigkill_mid_training_recovers(self, clean_metrics):
        ds = tiny_dataset()
        ref_w, ref_losses = self._healthy_weights(ds)
        t = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=3,
                                   seed=0, step_timeout=15.0)
        try:
            batches = list(ds.batches(6, 1, seed=t.shuffle_seed))
            for i, (x, y) in enumerate(batches):
                if i == 2:
                    os.kill(t._procs[0].pid, signal.SIGKILL)
                    t._procs[0].join(timeout=10)
                t.train_step(x, y)
            assert clean_metrics.value("resilience.degraded_steps") == 1
            assert t.metrics.losses == ref_losses
            assert all(
                np.array_equal(a, b)
                for a, b in zip(ref_w, weights_of(t.root))
            )
        finally:
            t.close()

    def test_rescale_policy_survives_without_bit_identity(
        self, clean_metrics
    ):
        ds = tiny_dataset()
        ref_w, _ = self._healthy_weights(ds)
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="mp.worker.step", kind="crash", step=1, rank=2
                ),
            )
        )
        t, w, losses = self._faulted_run(
            ds, plan, degrade_policy="rescale"
        )
        assert clean_metrics.value("resilience.degraded_steps") == 1
        assert len(losses) == len(ds) // 6
        # the lost shard is gone for good under rescale: weights differ
        assert not all(np.array_equal(a, b) for a, b in zip(ref_w, w))
        assert all(np.isfinite(p).all() for p in w)

    def test_every_worker_dead_raises_under_rescale(self):
        # rescale has no fallback replica: losing every worker is fatal
        t = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=2,
                                   seed=0, step_timeout=10.0,
                                   max_respawns=0,
                                   degrade_policy="rescale")
        try:
            for proc in t._procs:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=10)
            x, y = next(iter(tiny_dataset().batches(4, 1)))
            with pytest.raises(WorkerFailure, match="every worker"):
                t.train_step(x, y)
        finally:
            t.close()

    def test_every_worker_dead_recompute_still_trains(self,
                                                      clean_metrics):
        # recompute re-runs every lost shard on the root replica, so
        # even total worker loss degrades instead of aborting
        ds = tiny_dataset()
        ref_w, ref_losses = self._healthy_weights(ds)
        t = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=3,
                                   seed=0, step_timeout=10.0,
                                   max_respawns=0)
        try:
            for proc in t._procs:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=10)
            t.fit(ds, batch_size=2, epochs=1)
            assert t.live_workers == 0
            assert t.metrics.losses == ref_losses
            assert all(
                np.array_equal(a, b)
                for a, b in zip(ref_w, weights_of(t.root))
            )
        finally:
            t.close()

    def test_respawn_budget_is_bounded(self, clean_metrics):
        ds = tiny_dataset()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="mp.worker.step", kind="crash", rank=1, count=5
                ),
            )
        )
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=3, seed=0,
            fault_plan=plan, step_timeout=15.0, max_respawns=2,
        )
        try:
            t.fit(ds, batch_size=2, epochs=1)
            assert clean_metrics.value("resilience.respawns") == 2
            # after the budget is spent rank 1 stays down; training
            # continues degraded on the survivors
            assert len(t.metrics.losses) == len(ds) // 6
            assert t.live_workers == 2
        finally:
            t.close()

    def test_injected_nan_grad_raises_with_rank_attribution(
        self, clean_metrics
    ):
        ds = tiny_dataset()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="mp.worker.step", kind="nan_grad", step=1, rank=2
                ),
            )
        )
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=3, seed=0,
            fault_plan=plan, step_timeout=15.0,
        )
        try:
            with pytest.raises(DivergenceError, match="worker2"):
                t.fit(ds, batch_size=2, epochs=1)
        finally:
            t.close()

    def test_nan_grad_skip_policy_drops_step_and_continues(
        self, clean_metrics
    ):
        ds = tiny_dataset()
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="mp.worker.step", kind="nan_grad", step=1, rank=0
                ),
            )
        )
        t, w, losses = self._faulted_run(ds, plan, nan_policy="skip")
        assert clean_metrics.value("resilience.skipped_steps") == 1
        assert clean_metrics.value("resilience.nan_grads_detected") == 1
        assert len(losses) == len(ds) // 6
        assert all(np.isfinite(p).all() for p in w)

    def test_close_reaps_zombies_with_broken_pipes(self):
        t = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=2,
                                   seed=0)
        procs = list(t._procs)
        for proc in procs:
            os.kill(proc.pid, signal.SIGKILL)
        t.close()  # must not hang or raise
        assert all(not p.is_alive() for p in procs)
        assert t._procs == [] and t._conns == []


# ---------------------------------------------------------------------------
class TestMidCollectiveFaults:
    """Faults fired *inside* the overlapped all-reduce (site
    ``collective.hop``: a hop send, not a whole worker step).  The full
    position x bucket matrix lives in tests/test_collective.py; this is
    the fault-matrix anchor -- one kill and one hang mid-ring must
    complete the step degraded with bit-identical recovery."""

    def _run(self, ds, plan=None, **kw):
        kw.setdefault("step_timeout", kw.pop("timeout", 15.0))
        t = ProcessParallelTrainer(
            tiny_topology(), (2, *SHAPE), nodes=3, seed=0,
            fault_plan=plan, bucket_bytes=1024, **kw,
        )
        try:
            t.fit(ds, batch_size=2, epochs=1)
            return t, weights_of(t.root), list(t.metrics.losses)
        finally:
            t.close()

    @pytest.mark.parametrize("kind,rank,timeout",
                             [("crash", 1, 15.0), ("hang", 2, 2.0)])
    def test_hop_fault_recovers_bit_identical(self, clean_metrics, kind,
                                              rank, timeout):
        ds = tiny_dataset(n=18)
        _, ref_w, ref_losses = self._run(ds)
        get_metrics().clear()
        plan = FaultPlan(specs=(FaultSpec(
            site="collective.hop", kind=kind, step=1, rank=rank, bucket=0,
        ),))
        t, w, losses = self._run(ds, plan, timeout=timeout)
        assert clean_metrics.value("collective.aborts") == 1
        assert clean_metrics.value("resilience.degraded_steps") == 1
        assert [f.rank for f in t.failures] == [rank]
        assert losses == ref_losses
        assert all(np.array_equal(a, b) for a, b in zip(ref_w, w))


# ---------------------------------------------------------------------------
class TestTrainerWatchdog:
    def test_trainer_grads_site_raises(self, clean_metrics):
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.grads", kind="nan_grad",
                             step=1),)
        )
        tr = tiny_trainer(fault_plan=plan)
        ds = tiny_dataset()
        with pytest.raises(DivergenceError, match="node local"):
            tr.fit(ds, 4, epochs=1)
        assert tr.watchdog.incidents[0][0] == 1  # attributed to step 1

    def test_skip_policy_keeps_weights_of_dropped_step(
        self, clean_metrics
    ):
        plan = FaultPlan(
            specs=(FaultSpec(site="trainer.grads", kind="nan_grad",
                             step=0),)
        )
        tr = tiny_trainer(fault_plan=plan, nan_policy="skip")
        ds = tiny_dataset()
        before = weights_of(tr.etg)
        x, y = next(iter(ds.batches(4, 1)))
        tr.train_step(x, y)  # poisoned: must be dropped
        assert all(
            np.array_equal(a, b)
            for a, b in zip(before, weights_of(tr.etg))
        )
        tr.train_step(x, y)  # next step is clean and applies
        assert not all(
            np.array_equal(a, b)
            for a, b in zip(before, weights_of(tr.etg))
        )
        assert clean_metrics.value("resilience.skipped_steps") == 1

    def test_off_policy_never_checks(self, clean_metrics):
        tr = tiny_trainer(nan_policy="off")
        grads = [np.array([np.nan], dtype=np.float32)]
        assert tr.watchdog.check(grads) is True


# ---------------------------------------------------------------------------
class TestTrainingCheckpoint:
    def test_round_trip_restores_velocity_step_and_metrics(self):
        tr = tiny_trainer()
        ds = tiny_dataset()
        tr.fit(ds, 4, epochs=1)
        buf = io.BytesIO()
        tr.save(buf)
        buf.seek(0)
        fresh = tiny_trainer()
        ck = load_training_checkpoint(buf, fresh.etg, fresh.opt)
        assert ck.step == tr.iteration
        assert list(ck.losses) == tr.metrics.losses
        assert all(
            np.array_equal(a, b)
            for a, b in zip(weights_of(tr.etg), weights_of(fresh.etg))
        )
        assert all(
            np.array_equal(a, b)
            for a, b in zip(tr.opt._velocity, fresh.opt._velocity)
        )

    def test_kill_and_resume_is_exact_to_the_step(self, tmp_path):
        ds = tiny_dataset()
        a = tiny_trainer()
        a.fit(ds, 4, epochs=2)

        ck = str(tmp_path / "auto.npz")
        b = tiny_trainer(checkpoint_path=ck, checkpoint_every=2)
        for i, (x, y) in enumerate(
            ds.batches(4, 2, seed=b.shuffle_seed)
        ):
            b.train_step(x, y)
            if i == 3:
                break  # simulated kill between autosaves

        c = tiny_trainer()
        resumed_at = c.resume(ck)
        assert resumed_at == 4  # last autosave, not the kill point
        c.fit(ds, 4, epochs=2)
        assert c.metrics.losses == a.metrics.losses
        assert c.metrics.accuracies == a.metrics.accuracies
        assert all(
            np.array_equal(x, y)
            for x, y in zip(weights_of(a.etg), weights_of(c.etg))
        )

    def test_process_parallel_save_resume_round_trip(self, tmp_path):
        ds = tiny_dataset()
        ck = str(tmp_path / "pp.npz")
        a = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=2,
                                   seed=0)
        try:
            a.fit(ds, batch_size=2, epochs=2)
            final = weights_of(a.root)
            losses = list(a.metrics.losses)
        finally:
            a.close()

        b = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=2,
                                   seed=0)
        try:
            batches = list(ds.batches(4, 2, seed=b.shuffle_seed))
            for x, y in batches[:3]:
                b.train_step(x, y)
            b.save(ck)
        finally:
            b.close()

        c = ProcessParallelTrainer(tiny_topology(), (2, *SHAPE), nodes=2,
                                   seed=0)
        try:
            assert c.resume(ck) == 3
            c.fit(ds, batch_size=2, epochs=2)
            assert c.metrics.losses == losses
            assert all(
                np.array_equal(x, y)
                for x, y in zip(final, weights_of(c.root))
            )
        finally:
            c.close()

    def test_truncated_checkpoint_is_a_clear_error(self, tmp_path):
        tr = tiny_trainer()
        ck = str(tmp_path / "t.npz")
        tr.save(ck)
        blob = open(ck, "rb").read()
        with open(ck, "wb") as fh:
            fh.write(blob[: len(blob) // 3])
        fresh = tiny_trainer()
        with pytest.raises(ReproError):
            fresh.resume(ck)

    def test_corrupted_checkpoint_fails_before_mutating_weights(
        self, tmp_path
    ):
        tr = tiny_trainer()
        ck = str(tmp_path / "c.npz")
        tr.save(ck)
        corrupt_file(ck, n_bytes=512)
        fresh = tiny_trainer()
        before = weights_of(fresh.etg)
        with pytest.raises(ReproError):
            fresh.resume(ck)
        # digest/parse failure must leave the live weights untouched
        assert all(
            np.array_equal(a, b)
            for a, b in zip(before, weights_of(fresh.etg))
        )

    def test_atomic_save_leaves_no_tmp_and_overwrites_in_place(
        self, tmp_path
    ):
        tr = tiny_trainer()
        ck = tmp_path / "a.npz"
        tr.save(str(ck))
        tr.save(str(ck))  # second save replaces, never appends .npz
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.npz"]
        fresh = tiny_trainer()
        assert fresh.resume(str(ck)) == 0

    def test_wrong_kind_checkpoint_is_rejected(self, tmp_path):
        from repro.gxm.checkpoint import save_checkpoint

        tr = tiny_trainer()
        ck = str(tmp_path / "plain.npz")
        save_checkpoint(tr.etg, ck)  # weights-only, not a training ckpt
        with pytest.raises(ReproError):
            load_training_checkpoint(ck, tr.etg, tr.opt)

    def test_save_training_checkpoint_to_file_object(self):
        tr = tiny_trainer()
        buf = io.BytesIO()
        save_training_checkpoint(buf, tr.etg, tr.opt, step=0)
        buf.seek(0)
        assert load_training_checkpoint(buf, tr.etg, tr.opt).step == 0


# ---------------------------------------------------------------------------
class TestServeResilience:
    """Serving survives artifact corruption, replica crashes and
    compiled-tier failure; ``/healthz`` reports each state."""

    def _config(self, **kw):
        from repro.serve import ServeConfig

        kw.setdefault("buckets", (1, 2))
        kw.setdefault("batch_window_ms", 1.0)
        return ServeConfig(**kw)

    def _image(self, cfg, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal(cfg.input_shape).astype(np.float32)

    def test_corrupt_warm_artifact_cold_boots(self, tmp_path,
                                              clean_metrics):
        from repro.serve import InferenceServer

        cfg = self._config(engine="blocked")
        x = self._image(cfg)
        art = str(tmp_path / "warm.npz")
        with InferenceServer(cfg) as warm:
            ref = warm.predict(x)
            warm.save_streams_artifact(art)

        corrupt_file(art, n_bytes=256)
        server = InferenceServer(cfg)
        try:
            boot = server.start(streams_artifact=art)
            assert "artifact_error" in boot
            assert boot["warm_buckets"] == []  # every bucket cold
            health = server.health()
            assert health["status"] == "degraded"
            assert health["artifact_fallback"] is True
            assert server.metrics.value("serve.artifact_rejected") == 1
            assert np.array_equal(server.predict(x), ref)
        finally:
            server.stop()

    def test_stale_fingerprint_is_catchable_and_survivable(
        self, tmp_path, clean_metrics
    ):
        from repro.serve import InferenceServer, StreamWarmCache
        from repro.streams import StaleArtifactError

        cfg = self._config(engine="blocked", buckets=(1,))
        art = str(tmp_path / "foreign.npz")
        with InferenceServer(cfg) as donor:
            donor.save_streams_artifact(art)

        other = self._config(engine="blocked", buckets=(1,), seed=99)
        with pytest.raises(StaleArtifactError, match="fingerprint"):
            StreamWarmCache(other.fingerprint()).load(art)
        server = InferenceServer(other)
        try:
            server.start(streams_artifact=art)
            assert server.health()["artifact_fallback"] is True
            server.predict(self._image(other))
        finally:
            server.stop()

    def test_worker_crash_is_supervised_back_to_life(self,
                                                     clean_metrics):
        from repro.serve import InferenceServer

        plan = FaultPlan(
            specs=(
                FaultSpec(site="serve.worker.crash", kind="crash"),
            )
        )
        cfg = self._config(workers=1)
        server = InferenceServer(cfg, fault_injector=FaultInjector(plan))
        try:
            server.start()
            x = self._image(cfg)
            first = server.predict(x)  # served; worker dies afterwards
            deadline = time.time() + 15
            while (time.time() < deadline
                   and server.health()["live_workers"] < 1):
                time.sleep(0.02)
            health = server.health()
            assert health["live_workers"] == 1
            assert health["worker_restarts"] == 1
            assert server.metrics.value("serve.worker_crashes") == 1
            assert np.array_equal(server.predict(x, timeout=15.0), first)
        finally:
            server.stop()

    def test_tier_failure_degrades_bucket_to_interpret(self,
                                                       clean_metrics):
        from repro.serve import InferenceServer

        cfg = self._config(engine="blocked", buckets=(1,))
        x = self._image(cfg)
        with InferenceServer(cfg) as healthy:
            ref = healthy.predict(x)

        plan = FaultPlan(
            specs=(
                FaultSpec(site="serve.replica.run", kind="tier_fail"),
            )
        )
        server = InferenceServer(cfg, fault_injector=FaultInjector(plan))
        try:
            server.start()
            # the interpret tier computes the identical stream, so even
            # the degraded answer matches the compiled one bitwise
            assert np.array_equal(server.predict(x, timeout=60.0), ref)
            health = server.health()
            assert health["status"] == "degraded"
            assert health["degraded_buckets"] == [1]
            assert server.metrics.value("serve.tier_degraded") == 1
        finally:
            server.stop()

    def test_stream_compiled_walks_the_degrade_chain(self, clean_metrics):
        """A stream_compiled bucket degrades one registry step per
        failure (stream_compiled -> compiled -> interpret), each hop
        counted under its from/to pair, and still answers bitwise."""
        from repro.serve import InferenceServer

        cfg = self._config(engine="blocked", buckets=(1,),
                           execution_tier="stream_compiled")
        x = self._image(cfg)
        with InferenceServer(cfg) as healthy:
            ref = healthy.predict(x)

        plan = FaultPlan(
            specs=(
                FaultSpec(site="serve.replica.run", kind="tier_fail",
                          count=2),
            )
        )
        server = InferenceServer(cfg, fault_injector=FaultInjector(plan))
        try:
            server.start()
            assert np.array_equal(server.predict(x, timeout=60.0), ref)
            assert np.array_equal(server.predict(x, timeout=60.0), ref)
            health = server.health()
            assert health["status"] == "degraded"
            assert health["degraded_buckets"] == [1]
            assert server.metrics.value("serve.tier_degraded") == 2
            assert server.metrics.value(
                "serve.tier_degraded.stream_compiled_to_compiled") == 1
            assert server.metrics.value(
                "serve.tier_degraded.compiled_to_interpret") == 1
            # a third failure would find nothing below interpret
            assert np.array_equal(server.predict(x, timeout=60.0), ref)
        finally:
            server.stop()

    def test_healthz_endpoint_reports_degradation(self, tmp_path,
                                                  clean_metrics):
        import json
        import urllib.error
        import urllib.request

        from repro.serve import InferenceServer, serve_http

        cfg = self._config(engine="blocked", buckets=(1,))
        art = str(tmp_path / "warm.npz")
        with InferenceServer(cfg) as donor:
            donor.save_streams_artifact(art)
        corrupt_file(art, n_bytes=128)

        server = InferenceServer(cfg)
        server.start(streams_artifact=art)
        httpd = serve_http(server, port=0)
        port = httpd.server_address[1]
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as resp:
                assert resp.status == 200
                doc = json.loads(resp.read())
            assert doc["status"] == "degraded"
            assert doc["artifact_fallback"] is True
        finally:
            httpd.shutdown()
            server.stop()
        with pytest.raises(urllib.error.HTTPError) as exc:
            httpd2 = serve_http(server, port=0)
            try:
                urllib.request.urlopen(
                    "http://127.0.0.1:"
                    f"{httpd2.server_address[1]}/healthz",
                    timeout=10,
                )
            finally:
                httpd2.shutdown()
        assert exc.value.code == 503  # stopped server reports down


# ---------------------------------------------------------------------------
class TestFleetResilience:
    """Replica-*process* fault sites: the fleet reroutes around a killed
    replica, respawns it from the shared warm artifact, and shm slot
    corruption is contained to the one request owning the slot."""

    def _config(self, **kw):
        from repro.serve import ServeConfig

        kw.setdefault("engine", "blocked")
        kw.setdefault("buckets", (1, 2))
        kw.setdefault("batch_window_ms", 1.0)
        return ServeConfig(**kw)

    def test_sigkill_respawns_from_warm_artifact(self, tmp_path):
        from repro.serve import InferenceFleet, InferenceServer

        cfg = self._config()
        rng = np.random.default_rng(5)
        xs = rng.standard_normal((12, *cfg.input_shape)).astype(np.float32)
        art = str(tmp_path / "warm.npz")
        with InferenceServer(cfg) as donor:
            ref = [donor.predict(x) for x in xs]
            donor.save_streams_artifact(art)

        fleet = InferenceFleet(cfg, replicas=2, health_period_ms=10.0)
        fleet.start(streams_artifact=art)
        try:
            reqs = [fleet.submit(x) for x in xs]
            os.kill(fleet._handles[1].pid, signal.SIGKILL)
            for r, req in zip(ref, reqs):
                assert (req.result(30.0) == r).all()  # rerouted, bitwise
            deadline = time.monotonic() + 30.0
            while (
                time.monotonic() < deadline
                and fleet.health()["live_replicas"] < 2
            ):
                time.sleep(0.05)
            health = fleet.health()
            assert health["live_replicas"] == 2
            assert health["respawns"] >= 1
            # the respawn warm-booted from the shared store: no dryrun
            boot = fleet._handles[1].boot
            assert boot["warm_buckets"] == [1, 2]
            assert boot["cold_buckets"] == []
            for r, x in zip(ref, xs):
                assert (fleet.predict(x) == r).all()
        finally:
            fleet.stop()

    def test_fleet_fault_sites_fire_once_per_target_replica(self):
        from repro.serve import InferenceFleet, SlotCorruption

        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.replica.reply", kind="corrupt_message",
                      rank=1),
        ))
        cfg = self._config(engine="fast")
        rng = np.random.default_rng(6)
        xs = rng.standard_normal((10, *cfg.input_shape)).astype(np.float32)
        with InferenceFleet(cfg, replicas=2, fault_plan=plan) as fleet:
            # concurrent submissions so both replicas carry traffic
            reqs = [fleet.submit(x) for x in xs]
            failures = 0
            for req in reqs:
                try:
                    req.result(30.0)
                except SlotCorruption:
                    failures += 1
            assert failures == 1  # count=1, rank=1: exactly one victim
            assert fleet.metrics.value("serve.fleet.shm_corruption") == 1
            assert fleet._shm.in_use == 0  # victim's slot reclaimed
