"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


#: a VLEN=4 machine so µop-level tests stay small
TINY = MachineConfig(name="TINY", cores=4, freq_hz=1e9, vlen_bits=128)


def rand_conv_tensors(p: ConvParams, rng: np.random.Generator, scale: float = 1.0):
    """(x, w, dy) for a layer, fp32."""
    x = (rng.standard_normal((p.N, p.C, p.H, p.W)) * scale).astype(np.float32)
    w = (rng.standard_normal((p.K, p.C, p.R, p.S)) * scale).astype(np.float32)
    dy = (rng.standard_normal((p.N, p.K, p.P, p.Q)) * scale).astype(np.float32)
    return x, w, dy


def assert_close(a: np.ndarray, b: np.ndarray, rtol: float = 2e-4) -> None:
    """Relative max-norm comparison robust to fp32 accumulation-order noise."""
    scale = max(np.abs(b).max(), 1e-6)
    err = np.abs(np.asarray(a) - np.asarray(b)).max() / scale
    assert err < rtol, f"max relative error {err:.3e} exceeds {rtol}"
