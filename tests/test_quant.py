"""Quantized int16 kernels (section II-K)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.quant import CHAIN_LIMIT_PAIRS, qconv2d_forward, quantize
from repro.quant.qtensor import QuantTensor
from repro.types import ShapeError
from tests.conftest import rand_conv_tensors


class TestQuantize:
    def test_roundtrip_error_bound(self, rng):
        x = rng.standard_normal((64,)).astype(np.float32)
        q = quantize(x)
        err = np.abs(q.dequantize() - x).max()
        assert err <= q.scale  # one ULP of the fixed-point grid

    def test_power_of_two_scale(self, rng):
        x = rng.standard_normal((32,)).astype(np.float32)
        q = quantize(x)
        assert np.log2(q.scale) == int(np.log2(q.scale))

    def test_full_range_used(self):
        x = np.array([1.0, -1.0, 0.5], dtype=np.float32)
        q = quantize(x)
        # power-of-two scales put max magnitude within [2^14, 2^15)
        assert 2**14 <= np.abs(q.data).max() < 2**15

    def test_zero_tensor(self):
        q = quantize(np.zeros(8, dtype=np.float32))
        assert q.scale == 1.0 and np.all(q.data == 0)

    def test_dtype_enforced(self):
        with pytest.raises(ShapeError):
            QuantTensor(np.zeros(4, dtype=np.int32), 1.0)

    @given(scale=st.floats(1e-3, 1e3))
    @settings(max_examples=25, deadline=None)
    def test_relative_error_property(self, scale):
        rng = np.random.default_rng(int(scale * 1000) % 2**31)
        x = (rng.standard_normal(128) * scale).astype(np.float32)
        q = quantize(x)
        rel = np.abs(q.dequantize() - x).max() / (np.abs(x).max() + 1e-12)
        assert rel < 2**-14


class TestQConv:
    @pytest.mark.parametrize(
        "p",
        [
            ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1),
            ConvParams(N=2, C=16, K=8, H=7, W=7, R=1, S=1, stride=2),
            ConvParams(N=1, C=32, K=16, H=5, W=5, R=3, S=3, stride=1),
        ],
        ids=lambda p: p.describe(),
    )
    def test_close_to_fp32(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng, scale=0.5)
        ref = conv2d_forward(x, w, p)
        out = qconv2d_forward(quantize(x), quantize(w), p)
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert rel < 5e-3  # dual 15-bit quantization noise

    def test_chain_limit_does_not_change_result(self, rng):
        """Flush scheduling is a performance decision, not a numerical one
        (as long as the int32 accumulator survives).  Operands use the
        guaranteed-safe bit width."""
        from repro.quant.qkernels import safe_bits

        b = safe_bits(CHAIN_LIMIT_PAIRS)
        p = ConvParams(N=1, C=64, K=8, H=5, W=5, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng, scale=0.3)
        qx, qw = quantize(x, bits=b), quantize(w, bits=b)
        a = qconv2d_forward(qx, qw, p, chain_limit=2)
        c = qconv2d_forward(qx, qw, p, chain_limit=CHAIN_LIMIT_PAIRS)
        assert np.allclose(a, c, rtol=1e-5, atol=1e-5)

    def test_unbounded_chain_overflows(self, rng):
        """The reason the chain limit exists (section II-K): long chains
        overflow the int32 accumulator on worst-case data, while the
        restricted chain with safe-width operands survives it."""
        from repro.quant.qkernels import QuantOverflowError, safe_bits

        p = ConvParams(N=1, C=512, K=8, H=3, W=3, R=3, S=3, stride=1)
        x = np.ones((p.N, p.C, p.H, p.W), dtype=np.float32)
        w = np.ones((p.K, p.C, p.R, p.S), dtype=np.float32)
        with pytest.raises(QuantOverflowError):
            qconv2d_forward(quantize(x), quantize(w), p, chain_limit=10**6)
        b = safe_bits(CHAIN_LIMIT_PAIRS)
        qconv2d_forward(
            quantize(x, bits=b), quantize(w, bits=b), p,
            chain_limit=CHAIN_LIMIT_PAIRS,
        )

    def test_safe_bits_guarantee(self):
        """Operands quantized to safe_bits() can never overflow within the
        chain limit, even in the worst case."""
        from repro.quant.qkernels import safe_bits

        b = safe_bits(CHAIN_LIMIT_PAIRS)
        worst = 2**b
        peak = 2 * CHAIN_LIMIT_PAIRS * worst * worst
        assert peak < 2**31
        # and one more bit would break the guarantee
        assert 2 * CHAIN_LIMIT_PAIRS * (2 ** (b + 1)) ** 2 >= 2**31

    def test_shape_validation(self, rng):
        p = ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        with pytest.raises(ShapeError):
            qconv2d_forward(quantize(x[:, :4]), quantize(w), p)

    def test_output_is_fp32(self, rng):
        """Section II-K: the kernel's output is still 32 bits."""
        p = ConvParams(N=1, C=8, K=8, H=4, W=4, R=1, S=1, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        out = qconv2d_forward(quantize(x), quantize(w), p)
        assert out.dtype == np.float32
