"""Tests for repro.types."""

import numpy as np
import pytest

from repro.types import CodegenError, DType, Pass, ReproError, ShapeError


class TestDType:
    def test_f32_sizes(self):
        assert DType.F32.input_itemsize == 4
        assert DType.F32.output_itemsize == 4

    def test_qi16_sizes(self):
        # int16 inputs but 32-bit outputs (section II-K)
        assert DType.QI16F32.input_itemsize == 2
        assert DType.QI16F32.output_itemsize == 4

    def test_numpy_dtypes(self):
        assert DType.F32.np_input == np.float32
        assert DType.F32.np_accum == np.float32
        assert DType.QI16F32.np_input == np.int16
        assert DType.QI16F32.np_accum == np.int32

    def test_roundtrip_by_value(self):
        assert DType("f32") is DType.F32
        assert DType("qi16f32") is DType.QI16F32


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ShapeError, ReproError)
        assert issubclass(CodegenError, ReproError)

    def test_pass_values(self):
        assert {p.value for p in Pass} == {"forward", "backward", "update"}
