"""The reference convolutions ARE the spec -- validate them against a
brute-force per-element implementation and scipy."""

import numpy as np
import pytest
from scipy import signal

from repro.conv.params import ConvParams
from repro.conv.reference import (
    conv2d_backward_data,
    conv2d_forward,
    conv2d_update_weights,
    pad_input,
)
from tests.conftest import assert_close, rand_conv_tensors


def brute_force_forward(x, w, p: ConvParams):
    """Algorithm 1, literally."""
    xp = pad_input(x, p)
    out = np.zeros((p.N, p.K, p.P, p.Q), dtype=np.float64)
    for n in range(p.N):
        for k in range(p.K):
            for c in range(p.C):
                for oj in range(p.P):
                    for oi in range(p.Q):
                        for r in range(p.R):
                            for s in range(p.S):
                                out[n, k, oj, oi] += (
                                    xp[n, c, oj * p.stride + r, oi * p.stride + s]
                                    * w[k, c, r, s]
                                )
    return out.astype(np.float32)


SMALL_CASES = [
    ConvParams(N=1, C=2, K=3, H=5, W=5, R=3, S=3, stride=1),
    ConvParams(N=2, C=2, K=2, H=6, W=5, R=3, S=2, stride=2),
    ConvParams(N=1, C=3, K=2, H=4, W=4, R=1, S=1, stride=1),
    ConvParams(N=1, C=2, K=2, H=7, W=7, R=1, S=1, stride=2),
    ConvParams(N=1, C=1, K=1, H=5, W=5, R=5, S=5, stride=1, pad_h=0, pad_w=0),
]


class TestForward:
    @pytest.mark.parametrize("p", SMALL_CASES, ids=lambda p: p.describe())
    def test_matches_brute_force(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        assert_close(conv2d_forward(x, w, p), brute_force_forward(x, w, p))

    def test_matches_scipy_correlate(self, rng):
        """Convolution here is cross-correlation (no kernel flip)."""
        p = ConvParams(N=1, C=1, K=1, H=8, W=8, R=3, S=3, stride=1,
                       pad_h=0, pad_w=0)
        x, w, _ = rand_conv_tensors(p, rng)
        ours = conv2d_forward(x, w, p)[0, 0]
        sp = signal.correlate2d(x[0, 0], w[0, 0], mode="valid")
        assert_close(ours, sp)

    def test_shape_check(self, rng):
        p = SMALL_CASES[0]
        x, w, _ = rand_conv_tensors(p, rng)
        from repro.types import ShapeError

        with pytest.raises(ShapeError):
            conv2d_forward(x, w[:, :1], p)


class TestBackwardIsAdjoint:
    """<conv(x, w), dy> == <x, conv_bwd(dy, w)> -- the defining property of
    the data-gradient."""

    @pytest.mark.parametrize("p", SMALL_CASES, ids=lambda p: p.describe())
    def test_adjoint(self, p, rng):
        x, w, dy = rand_conv_tensors(p, rng)
        lhs = float((conv2d_forward(x, w, p) * dy).sum())
        rhs = float((x * conv2d_backward_data(dy, w, p)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestUpdateIsGradient:
    """dW must equal the finite-difference gradient of <conv(x,w), dy>."""

    @pytest.mark.parametrize("p", SMALL_CASES[:3], ids=lambda p: p.describe())
    def test_finite_difference(self, p, rng):
        x, w, dy = rand_conv_tensors(p, rng, scale=0.5)
        dw = conv2d_update_weights(x, dy, p)
        eps = 1e-2
        for idx in [(0, 0, 0, 0), (p.K - 1, p.C - 1, p.R - 1, p.S - 1)]:
            wp = w.copy()
            wp[idx] += eps
            wm = w.copy()
            wm[idx] -= eps
            fd = (
                (conv2d_forward(x, wp, p) * dy).sum()
                - (conv2d_forward(x, wm, p) * dy).sum()
            ) / (2 * eps)
            assert dw[idx] == pytest.approx(fd, rel=2e-2, abs=1e-2)

    @pytest.mark.parametrize("p", SMALL_CASES, ids=lambda p: p.describe())
    def test_adjoint_in_w(self, p, rng):
        """<conv(x, w), dy> == <w, upd(x, dy)>."""
        x, w, dy = rand_conv_tensors(p, rng)
        lhs = float((conv2d_forward(x, w, p) * dy).sum())
        rhs = float((w * conv2d_update_weights(x, dy, p)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestPadInput:
    def test_zero_pad(self, rng):
        p = ConvParams(N=1, C=2, K=2, H=3, W=3, R=3, S=3, stride=1)
        x, _, _ = rand_conv_tensors(p, rng)
        xp = pad_input(x, p)
        assert xp.shape == (1, 2, 5, 5)
        assert np.all(xp[:, :, 0, :] == 0)
        assert np.array_equal(xp[:, :, 1:-1, 1:-1], x)

    def test_no_pad_returns_same(self, rng):
        p = ConvParams(N=1, C=2, K=2, H=3, W=3, R=1, S=1, stride=1)
        x, _, _ = rand_conv_tensors(p, rng)
        assert pad_input(x, p) is x
