"""Blocked int16 engine (streams + VNNI kernels end to end)."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.quant import qconv2d_forward, quantize
from repro.quant.qconv_engine import QuantConvForward
from tests.conftest import rand_conv_tensors

CASES = [
    ConvParams(N=2, C=32, K=32, H=10, W=10, R=3, S=3, stride=1),
    ConvParams(N=1, C=64, K=16, H=8, W=8, R=1, S=1, stride=2),
    ConvParams(N=1, C=16, K=16, H=9, W=7, R=3, S=5, stride=1),
]


class TestQuantEngine:
    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    @pytest.mark.parametrize("machine", [KNM, SKX], ids=lambda m: m.name)
    def test_matches_functional_qconv(self, p, machine, rng):
        """The blocked/streams execution must agree with the standalone
        chunked int16 kernel bit-for-bit (same flush schedule)."""
        x, w, _ = rand_conv_tensors(p, rng, scale=0.3)
        qx, qw = quantize(x), quantize(w)
        eng = QuantConvForward(p, machine=machine, threads=2)
        out = eng.run_quantized(qx, qw)
        ref = qconv2d_forward(qx, qw, p, chain_limit=eng.chain_limit)
        assert np.abs(out - ref).max() < 1e-4 * max(1.0, np.abs(ref).max())

    def test_close_to_fp32(self, rng):
        p = CASES[0]
        x, w, _ = rand_conv_tensors(p, rng, scale=0.3)
        eng = QuantConvForward(p, machine=KNM)
        out = eng.run_nchw(x, w)
        ref = conv2d_forward(x, w, p)
        rel = np.abs(out - ref).max() / np.abs(ref).max()
        assert rel < 5e-3

    def test_variants_are_q16(self):
        eng = QuantConvForward(CASES[0], machine=KNM)
        assert all(v.startswith("conv_q16") for v in eng.variant_names)

    def test_register_budget_halved(self):
        """int32+fp32 accumulator pairs: RB capped (section II-K)."""
        eng = QuantConvForward(
            ConvParams(N=1, C=16, K=16, H=56, W=56, R=3, S=3, stride=1),
            machine=KNM,
        )
        assert eng.plan.rb_p * eng.plan.rb_q <= 13
        f32 = __import__(
            "repro.conv.blocking", fromlist=["choose_blocking"]
        ).choose_blocking(eng.params, KNM)
        assert eng.plan.rb_q <= f32.rb_q

    def test_4vnni_on_knm_only(self):
        knm = QuantConvForward(CASES[0], machine=KNM)
        skx = QuantConvForward(CASES[0], machine=SKX)
        from repro.arch.isa import Op

        knm_prog = knm.programs[0]
        skx_prog = skx.programs[0]
        knm_quads = [u for u in knm_prog.uops
                     if u.op is Op.VVNNI and u.tensor is not None]
        skx_quads = [u for u in skx_prog.uops
                     if u.op is Op.VVNNI and u.tensor is not None]
        assert knm_quads and not skx_quads

    def test_output_dtype_f32(self, rng):
        p = CASES[1]
        x, w, _ = rand_conv_tensors(p, rng)
        out = QuantConvForward(p, machine=KNM).run_nchw(x, w)
        assert out.dtype == np.float32
