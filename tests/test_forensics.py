"""repro.forensics: flight recorder, incident bundles, deterministic
replay.

The load-bearing guarantees, each tested here:

* **lock-cheap recorder** -- a bounded ring, branch-cheap when disabled,
  whose events survive cross-process drains with the sender's pid;
* **atomic, tamper-evident bundles** -- a capture either fully exists
  under its final name or not at all, and any bit flipped after the
  write is detected at load time (:class:`BundleError`), never replayed;
* **torn-write checkpoint safety** -- a crash injected between the tmp
  write and the ``os.replace`` leaves the last good checkpoint intact,
  so a resume falls back to it with no live array half-mutated;
* **deterministic replay** -- a training-step bundle captured during a
  mid-collective worker crash and a serving bundle captured during a
  shared-memory slot corruption both re-execute bitwise
  (``python -m repro incident replay``), end to end through the CLI.
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.forensics import (
    BundleError,
    FlightRecorder,
    IncidentWriter,
    ReplayMismatch,
    diff_incidents,
    digest_tensor_list,
    get_recorder,
    list_incidents,
    load_incident,
    replay_incident,
    tensor_digest,
    write_incident,
)
from repro.gxm.checkpoint import (
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.gxm.trainer import SGD
from repro.models.resnet50 import resnet_mini_topology
from repro.obs.metrics import get_metrics
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.serve import (
    CanaryError,
    InferenceFleet,
    InferenceServer,
    ServeConfig,
    SlotCorruption,
)

pytestmark = pytest.mark.timeout(180)

SHAPE = (3, 8, 8)


@pytest.fixture(autouse=True)
def _pristine_recorder():
    """Trainer/server construction arms the process-wide recorder;
    restore its state so tests cannot leak into each other."""
    rec = get_recorder()
    enabled, capacity = rec.enabled, rec.capacity
    yield
    rec.enabled = enabled
    rec.resize(capacity)
    rec.clear()


def _etg(seed=0):
    return ExecutionTaskGraph(
        resnet_mini_topology(num_classes=4, width=8), (2, *SHAPE),
        engine="fast", seed=seed,
    )


def serve_images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 16, 8, 8)).astype(np.float32)


# ---------------------------------------------------------------------------
class TestFlightRecorder:
    def test_disabled_is_a_no_op(self):
        rec = FlightRecorder(enabled=False, capacity=8)
        rec.record("serve.admit", req=1)
        assert len(rec) == 0 and rec.events() == []

    def test_bounded_ring_drops_oldest(self):
        rec = FlightRecorder(enabled=True, capacity=4)
        for i in range(10):
            rec.record("tick", i=i)
        assert len(rec) == 4
        assert [r.args["i"] for r in rec.events()] == [6, 7, 8, 9]

    def test_payload_may_carry_a_kind_key(self):
        """The event name is positional-only, so a fault's own ``kind``
        rides in the payload without a TypeError (regression: the fleet
        reaper thread died on exactly this collision)."""
        rec = FlightRecorder(enabled=True, capacity=4)
        rec.record("fault.fire", site="collective.hop", kind="crash")
        (r,) = rec.events("fault.fire")
        assert r.kind == "fault.fire" and r.args["kind"] == "crash"

    def test_kind_filter_and_clear(self):
        rec = FlightRecorder(enabled=True, capacity=8)
        rec.record("a")
        rec.record("b")
        rec.record("a")
        assert len(rec.events("a")) == 2
        rec.clear()
        assert len(rec) == 0

    def test_export_ingest_rewrites_pid(self):
        child = FlightRecorder(enabled=True, capacity=8)
        child.record("mp.step", step=3)
        shipped = child.export_events(clear=True)
        assert len(child) == 0
        parent = FlightRecorder(enabled=True, capacity=8)
        parent.ingest(shipped, pid=4242)
        (r,) = parent.events()
        assert r.pid == 4242 and r.args["step"] == 3

    def test_resize_keeps_newest(self):
        rec = FlightRecorder(enabled=True, capacity=8)
        for i in range(8):
            rec.record("tick", i=i)
        rec.resize(2)
        assert rec.capacity == 2
        assert [r.args["i"] for r in rec.events()] == [6, 7]

    def test_singleton_identity_survives_enable_disable(self):
        from repro.forensics import disable, enable

        rec = get_recorder()
        assert enable(capacity=rec.capacity) is rec
        assert rec.enabled
        assert disable() is rec
        assert not rec.enabled


# ---------------------------------------------------------------------------
class TestBundle:
    def _write(self, tmp_path, **kw):
        kw.setdefault("kind", "serve")
        kw.setdefault("error", ValueError("boom"))
        kw.setdefault("tensors", {
            "x": np.arange(6, dtype=np.float32).reshape(2, 3),
        })
        kw.setdefault("events", [])
        kw.setdefault("spans", [])
        return write_incident(str(tmp_path), **kw)

    def test_write_load_roundtrip(self, tmp_path):
        path = self._write(
            tmp_path, replay={"mode": "serve", "bucket": 1},
            extra={"trigger": "test"},
        )
        assert os.path.basename(path).startswith("incident_serve_")
        doc = load_incident(path)
        m = doc["manifest"]
        assert m["error"] == {"type": "ValueError", "message": "boom"}
        assert m["replay"]["bucket"] == 1
        assert m["tensor_digests"]["x"] == tensor_digest(doc["tensors"]["x"])
        # no tmp litter survives the claim
        assert not [n for n in os.listdir(tmp_path) if ".tmp~" in n]

    def test_concurrent_names_never_collide(self, tmp_path):
        a = self._write(tmp_path)
        b = self._write(tmp_path)
        assert a != b and os.path.isdir(a) and os.path.isdir(b)

    def test_tampered_file_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        with open(os.path.join(path, "events.json"), "a") as fh:
            fh.write(" ")
        with pytest.raises(BundleError, match="digest mismatch"):
            load_incident(path)
        rows = list_incidents(str(tmp_path))
        assert [r["valid"] for r in rows] == [False]

    def test_missing_file_is_rejected(self, tmp_path):
        path = self._write(tmp_path)
        os.unlink(os.path.join(path, "tensors.npz"))
        with pytest.raises(BundleError, match="missing"):
            load_incident(path)

    def test_verify_false_skips_digests(self, tmp_path):
        path = self._write(tmp_path)
        with open(os.path.join(path, "events.json"), "a") as fh:
            fh.write(" ")
        doc = load_incident(path, verify=False)
        assert doc["manifest"]["kind"] == "serve"

    def test_diff_incidents(self, tmp_path):
        a = self._write(tmp_path, extra={"n": 1})
        b = self._write(
            tmp_path,
            tensors={"x": np.ones((2, 3), dtype=np.float32)},
        )
        rep = diff_incidents(a, b)
        assert not rep["same"] and "x" in rep["tensor_diffs"]
        same = diff_incidents(a, a)
        assert same["same"] and not same["tensor_diffs"]

    def test_writer_disabled_and_capture_failure(self, tmp_path):
        off = IncidentWriter(None)
        assert not off.enabled
        assert off.capture("serve") is None
        writer = IncidentWriter(str(tmp_path))
        before = get_metrics().value("forensics.bundle_errors")
        # an undigestable tensor fails the capture, which is swallowed
        # (the original failure must never be masked by forensics)
        assert writer.capture("serve", tensors={"x": object()}) is None
        assert get_metrics().value("forensics.bundle_errors") == before + 1
        assert writer.written == []
        strict = IncidentWriter(str(tmp_path), strict=True)
        with pytest.raises(Exception):  # noqa: B017 -- any capture error
            strict.capture("serve", tensors={"x": object()})

    def test_events_only_bundle_replays_trivially(self, tmp_path):
        path = self._write(tmp_path, replay=None, tensors={})
        rep = replay_incident(path)
        assert rep == {"ok": True, "mode": None, "replayed": False}


# ---------------------------------------------------------------------------
class TestCheckpointTornWrite:
    """Satellite: a crash between the tmp write and ``os.replace`` must
    leave the previous checkpoint untouched and resumable."""

    def _crash_injector(self):
        return FaultInjector(FaultPlan((
            FaultSpec(site="checkpoint.save", kind="crash", count=1),
        )))

    def test_weight_checkpoint_survives_torn_write(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        etg = _etg(seed=0)
        save_checkpoint(etg, path)
        good = [p.copy() for p in etg.params()]
        for p in etg.params():
            p += 1.0
        perturbed = [p.copy() for p in etg.params()]
        with pytest.raises(InjectedFault, match="tmp write"):
            save_checkpoint(etg, path, injector=self._crash_injector())
        # the tmp sibling is gone, the live arrays untouched by the
        # failed save, and the file still holds the last good weights
        assert not [n for n in os.listdir(tmp_path) if ".tmp~" in n]
        assert all(
            np.array_equal(p, q) for p, q in zip(etg.params(), perturbed)
        )
        fresh = _etg(seed=3)
        load_checkpoint(fresh, path)
        assert all(
            np.array_equal(p, q) for p, q in zip(fresh.params(), good)
        )

    def test_training_resume_falls_back_to_last_good(self, tmp_path):
        path = str(tmp_path / "train.npz")
        etg = _etg(seed=0)
        opt = SGD(etg.params(), lr=0.05)
        save_training_checkpoint(
            path, etg, opt, step=3, losses=[1.0, 0.9, 0.8],
        )
        good = [p.copy() for p in etg.params()]
        for p in etg.params():
            p *= 1.5
        with pytest.raises(InjectedFault):
            save_training_checkpoint(
                path, etg, opt, step=4,
                injector=self._crash_injector(),
            )
        fresh = _etg(seed=3)
        ck = load_training_checkpoint(path, fresh, SGD(fresh.params()))
        assert ck.step == 3  # the step-4 save died; resume is exact to 3
        assert ck.losses == [1.0, 0.9, 0.8]
        assert all(
            np.array_equal(p, q) for p, q in zip(fresh.params(), good)
        )

    def test_recorder_breadcrumbs_for_checkpoint_and_fault(self, tmp_path):
        from repro.forensics import enable

        rec = enable(capacity=64)
        rec.clear()
        path = str(tmp_path / "ck.npz")
        etg = _etg()
        save_checkpoint(etg, path)
        load_checkpoint(etg, path)
        with pytest.raises(InjectedFault):
            save_checkpoint(etg, path, injector=self._crash_injector())
        kinds = [r.kind for r in rec.events()]
        assert "checkpoint.save" in kinds and "checkpoint.load" in kinds
        (fire,) = rec.events("fault.fire")
        assert fire.args["site"] == "checkpoint.save"
        assert fire.args["kind"] == "crash"


# ---------------------------------------------------------------------------
class TestTrainIncidentDrill:
    """Tentpole drill, training side: a mid-collective worker crash
    degrades the step, freezes exactly one bundle, and the bundle
    replays bitwise -- through the API and through the CLI."""

    def test_collective_crash_bundle_replays_bitwise(self, tmp_path):
        inc = str(tmp_path / "incidents")
        plan = FaultPlan(specs=(
            FaultSpec(site="collective.hop", kind="crash",
                      step=2, rank=1),
        ))
        t = ProcessParallelTrainer(
            resnet_mini_topology(num_classes=4, width=8), (2, *SHAPE),
            nodes=2, seed=0, step_timeout=10.0, bucket_bytes=1024,
            fault_plan=plan, incident_dir=inc,
        )
        rng = np.random.default_rng(0)
        try:
            for _ in range(4):
                x = rng.standard_normal((4, *SHAPE)).astype(np.float32)
                labels = rng.integers(0, 4, 4)
                assert np.isfinite(t.train_step(x, labels))
            written = list(t.incidents.written)
        finally:
            t.close()

        assert len(written) == 1, "exactly one bundle per degraded step"
        rows = list_incidents(inc)
        assert [r["valid"] for r in rows] == [True]
        doc = load_incident(written[0])
        m = doc["manifest"]
        assert m["kind"] == "train"
        assert m["error"]["type"] == "WorkerFailure"
        assert m["extra"]["failed_rank"] == 1
        assert m["replay"]["mode"] == "train" and m["replay"]["step"] == 2
        # the recorded expectation is the digest of the bit-identically
        # recomputed gradients -- the replay must reproduce it
        assert m["expect"]["grads"]

        rep = replay_incident(written[0])
        assert rep["ok"] and rep["mode"] == "train"
        assert rep["digests"]["grads"] == m["expect"]["grads"]
        assert rep["digests"]["loss"] == m["expect"]["loss"]
        # and the CLI agrees
        assert cli_main(["incident", "replay", written[0]]) == 0

    def test_replay_detects_a_tampered_expectation(self, tmp_path):
        """Flip one expected digest: the replay must refuse, and the
        CLI must exit non-zero (the bundle file digests do not cover
        the manifest -- the manifest IS the claim being checked)."""
        inc = str(tmp_path / "incidents")
        plan = FaultPlan(specs=(
            FaultSpec(site="collective.hop", kind="crash",
                      step=0, rank=0),
        ))
        t = ProcessParallelTrainer(
            resnet_mini_topology(num_classes=4, width=8), (2, *SHAPE),
            nodes=2, seed=0, step_timeout=10.0, bucket_bytes=1024,
            fault_plan=plan, incident_dir=inc,
        )
        try:
            rng = np.random.default_rng(0)
            x = rng.standard_normal((4, *SHAPE)).astype(np.float32)
            t.train_step(x, rng.integers(0, 4, 4))
            (path,) = t.incidents.written
        finally:
            t.close()
        mpath = os.path.join(path, "manifest.json")
        with open(mpath) as fh:
            manifest = json.load(fh)
        manifest["expect"]["grads"] = "0" * 16
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ReplayMismatch, match="grads"):
            replay_incident(path)
        assert cli_main(["incident", "replay", path]) == 1


# ---------------------------------------------------------------------------
class TestServeIncidentDrill:
    """Tentpole drill, serving side: shared-memory slot corruption in a
    fleet and a canary rollback on a single server each freeze one
    replayable bundle."""

    def test_slot_corruption_bundle_replays_bitwise(self, tmp_path):
        inc = str(tmp_path / "incidents")
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.replica.reply", kind="corrupt_message",
                      rank=0),
        ))
        cfg = ServeConfig(buckets=(1, 2), batch_window_ms=1.0, workers=1,
                          incident_dir=inc, recorder=256)
        xs = serve_images(6, seed=8)
        with InferenceFleet(cfg, replicas=2, fault_plan=plan) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            failures = 0
            for r in reqs:
                try:
                    r.result(30.0)
                except SlotCorruption:
                    failures += 1
            assert failures == 1
            written = list(fleet._incidents.written)
            ring_kinds = {r.kind for r in get_recorder().events()}

        assert len(written) == 1, "exactly one bundle per corruption"
        assert "fleet.slot_corruption" in ring_kinds
        doc = load_incident(written[0])
        m = doc["manifest"]
        assert m["kind"] == "serve"
        assert m["error"]["type"] == "SlotCorruption"
        assert m["extra"]["trigger"] == "slot_corruption"
        # the frozen request is bitwise one of the submitted images
        # (read from the shm request region before the slot reclaim)
        assert tensor_digest(doc["tensors"]["x"]) in {
            tensor_digest(x[None]) for x in xs
        }
        rep = replay_incident(written[0])
        assert rep["ok"] and rep["mode"] == "serve"

    def test_canary_rollback_bundle_replays_bitwise(self, tmp_path):
        from dataclasses import replace

        inc = str(tmp_path / "incidents")
        cfg = ServeConfig(buckets=(1, 2), batch_window_ms=1.0,
                          incident_dir=inc, recorder=256)
        ck_a = str(tmp_path / "a.npz")
        ck_b = str(tmp_path / "b.npz")
        save_checkpoint(replace(cfg, seed=11).build_etg(1), ck_a)
        save_checkpoint(replace(cfg, seed=22).build_etg(1), ck_b)
        injector = FaultInjector(FaultPlan((
            FaultSpec(site="serve.reload.canary_fail",
                      kind="canary_fail", count=1),
        )))
        server = InferenceServer(
            replace(cfg, checkpoint=ck_a), fault_injector=injector
        )
        server.start()
        try:
            with pytest.raises(CanaryError, match="rolled back"):
                server.reload_checkpoint(ck_b)
            (path,) = server._incidents.written
            assert "serve.reload.rollback" in {
                r.kind for r in get_recorder().events()
            }
        finally:
            server.stop()
        m = load_incident(path)["manifest"]
        assert m["error"]["type"] == "CanaryError"
        assert m["extra"] == {"checkpoint": ck_b, "trigger": "canary"}
        # the bundle's config points at the *rejected* checkpoint, so
        # the replay rebuilds exactly the engine the canary ran on
        assert m["config"]["checkpoint"] == ck_b
        rep = replay_incident(path)
        assert rep["ok"] and rep["mode"] == "serve"

    def test_dump_incident_records_and_replays(self, tmp_path):
        inc = str(tmp_path / "incidents")
        cfg = ServeConfig(buckets=(1, 2), incident_dir=inc, recorder=128)
        with InferenceServer(cfg) as server:
            server.predict(serve_images(1)[0], timeout=30.0)
            path = server.dump_incident()
            assert server.health()["incident_bundles"] == 1
        doc = load_incident(path)
        m = doc["manifest"]
        assert m["kind"] == "manual" and m["extra"]["trigger"] == "dump"
        # the admission and batch of the served request are in the ring
        kinds = {e["kind"] for e in doc["events"]["ring"]}
        assert {"serve.admit", "serve.batch", "serve.dump"} <= kinds
        rep = replay_incident(path)
        assert rep["ok"] and rep["digests"]["y"] == m["expect"]["y"]

    def test_dump_without_incident_dir_is_refused(self):
        from repro.types import ReproError

        with InferenceServer(ServeConfig(buckets=(1,))) as server:
            with pytest.raises(ReproError, match="incident_dir"):
                server.dump_incident()

    def test_config_fingerprint_ignores_forensics_knobs(self, tmp_path):
        base = ServeConfig(buckets=(1, 2))
        armed = ServeConfig(buckets=(1, 2),
                            incident_dir=str(tmp_path), recorder=64)
        assert base.fingerprint() == armed.fingerprint()

    def test_recorder_knob_validated(self):
        with pytest.raises(ValueError, match="recorder"):
            ServeConfig(recorder=-1)


# ---------------------------------------------------------------------------
class TestIncidentCLI:
    def _dump_bundle(self, tmp_path):
        inc = str(tmp_path / "incidents")
        cfg = ServeConfig(buckets=(1,), incident_dir=inc, recorder=64)
        with InferenceServer(cfg) as server:
            path = server.dump_incident()
        return inc, path

    def test_list_show_diff(self, tmp_path, capsys):
        inc, path = self._dump_bundle(tmp_path)
        assert cli_main(["incident", "list", "--dir", inc]) == 0
        out = capsys.readouterr().out
        assert os.path.basename(path) in out and "kind=manual" in out
        assert cli_main(["incident", "show", path]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["kind"] == "manual" and shown["tensor_shapes"]
        assert cli_main(["incident", "diff", path, path]) == 0
        assert json.loads(capsys.readouterr().out)["same"]

    def test_list_empty_dir(self, tmp_path, capsys):
        assert cli_main(
            ["incident", "list", "--dir", str(tmp_path / "nope")]
        ) == 0
        assert "no incident bundles" in capsys.readouterr().out

    def test_list_flags_tampered_bundle(self, tmp_path, capsys):
        inc, path = self._dump_bundle(tmp_path)
        with open(os.path.join(path, "events.json"), "a") as fh:
            fh.write(" ")
        assert cli_main(["incident", "list", "--dir", inc]) == 0
        assert "BAD" in capsys.readouterr().out
        # show refuses the tampered bundle unless told not to verify
        with pytest.raises(BundleError):
            cli_main(["incident", "show", path])
        assert cli_main(["incident", "show", path, "--no-verify"]) == 0

    def test_replay_mismatch_exits_nonzero(self, tmp_path, capsys):
        _inc, path = self._dump_bundle(tmp_path)
        mpath = os.path.join(path, "manifest.json")
        with open(mpath) as fh:
            manifest = json.load(fh)
        manifest["expect"]["y"] = "f" * 16
        with open(mpath, "w") as fh:
            json.dump(manifest, fh)
        assert cli_main(["incident", "replay", path]) == 1
        assert "REPLAY MISMATCH" in capsys.readouterr().out

    def test_wrong_arity_is_a_typed_error(self, tmp_path):
        from repro.types import ReproError

        with pytest.raises(ReproError, match="exactly 1"):
            cli_main(["incident", "show"])
        with pytest.raises(ReproError, match="exactly 2"):
            cli_main(["incident", "diff", "only-one"])


# ---------------------------------------------------------------------------
class TestDigestHelpers:
    def test_tensor_digest_covers_dtype_shape_bytes(self):
        a = np.arange(6, dtype=np.float32)
        assert tensor_digest(a) == tensor_digest(a.copy())
        assert tensor_digest(a) != tensor_digest(a.reshape(2, 3))
        assert tensor_digest(a) != tensor_digest(a.astype(np.float64))
        b = a.copy()
        b[0] += 1e-7
        assert tensor_digest(a) != tensor_digest(b)

    def test_digest_tensor_list_is_order_sensitive(self):
        a = np.ones(3, dtype=np.float32)
        b = np.zeros(3, dtype=np.float32)
        assert digest_tensor_list([a, b]) != digest_tensor_list([b, a])
