"""repro.tune: mapspace, search, tuning database, engine integration."""

import json

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.blocking import accumulator_budget
from repro.conv.engine import make_engine
from repro.conv.params import ConvParams
from repro.obs.metrics import get_metrics
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.streams.serialize import StaleArtifactError
from repro.tune import (
    TuningDatabase,
    TuningDBError,
    build_mapspace,
    entry_key,
    feasible_rb_pairs,
    search_mapspace,
    tune_layer,
)
from repro.types import CodegenError, DType, Pass

P_SMALL = ConvParams(N=1, C=16, K=16, H=10, W=10, R=3, S=3, stride=1)
P_1X1 = ConvParams(N=1, C=32, K=16, H=10, W=10, R=1, S=1, stride=1)


@pytest.fixture
def clean_metrics():
    get_metrics().clear()
    yield get_metrics()
    get_metrics().clear()


def _small_search(**kw):
    kw.setdefault("top_k", 3)
    kw.setdefault("max_candidates", 120)
    return search_mapspace(P_SMALL, SKX, **kw)


# ---------------------------------------------------------------------------
class TestMapspace:
    def test_rb_pairs_respect_budget_and_extents(self):
        budget = accumulator_budget(SKX)
        for rb_p, rb_q in feasible_rb_pairs(P_SMALL, SKX):
            assert rb_p * rb_q <= budget
            assert rb_p <= P_SMALL.P and rb_q <= P_SMALL.Q

    def test_rb_pairs_prune_high_waste_factors(self):
        # Q=10: rb_q=7 leaves remainder 3 > 7/2? no (3 <= 3.5) -- but
        # rb_q=6 leaves 4 > 3, which must be pruned (not the extent)
        pairs = feasible_rb_pairs(P_SMALL, SKX)
        assert all(rb_q != 6 for _, rb_q in pairs)
        assert any(rb_q == 10 for _, rb_q in pairs)  # the full extent

    def test_q16_budget_is_capped(self):
        budget = accumulator_budget(KNM, DType.QI16F32)
        assert budget == 13
        p = ConvParams(N=1, C=32, K=32, H=28, W=28, R=3, S=3, stride=1)
        for rb_p, rb_q in feasible_rb_pairs(p, KNM, DType.QI16F32):
            assert rb_p * rb_q <= 13

    def test_enumeration_is_deterministic(self):
        a = list(build_mapspace(P_SMALL, SKX).candidates())
        b = list(build_mapspace(P_SMALL, SKX).candidates())
        assert a == b
        assert len(a) == build_mapspace(P_SMALL, SKX).size

    def test_cb_inner_only_for_1x1(self):
        assert build_mapspace(P_SMALL, SKX).loop_orders == ("cb_outer",)
        assert "cb_inner" in build_mapspace(P_1X1, SKX).loop_orders

    def test_rejects_non_vlen_feature_maps(self):
        bad = ConvParams(N=1, C=24, K=16, H=10, W=10, R=3, S=3, stride=1)
        with pytest.raises(CodegenError, match="VLEN"):
            build_mapspace(bad, SKX)

    def test_rejects_unknown_prefetch_mode(self):
        with pytest.raises(CodegenError, match="prefetch"):
            build_mapspace(P_SMALL, SKX, prefetch_modes=("warp",))

    def test_heuristic_candidate_is_in_space(self):
        space = build_mapspace(P_SMALL, SKX)
        heur = space.heuristic_candidate()
        assert (heur.rb_p, heur.rb_q) in space.rb_pairs

    def test_candidate_plan_matches_engine_expectations(self):
        space = build_mapspace(P_SMALL, SKX)
        cand = next(space.candidates())
        plan = cand.plan(P_SMALL, SKX)
        assert plan.acc_regs == cand.rb_p * cand.rb_q
        assert plan.rb_q_rem == P_SMALL.Q % cand.rb_q


# ---------------------------------------------------------------------------
class TestSearch:
    def test_search_is_deterministic(self, clean_metrics):
        a = _small_search()
        b = _small_search()
        assert a.best.candidate == b.best.candidate
        assert [c.candidate for c in a.ranking] == [
            c.candidate for c in b.ranking
        ]

    def test_ranking_is_sorted_with_stable_tiebreak(self, clean_metrics):
        out = _small_search()
        keys = [c.sort_key() for c in out.ranking]
        assert keys == sorted(keys)

    def test_winner_never_prices_worse_than_heuristic(self, clean_metrics):
        out = _small_search()
        assert out.best.cycles <= out.heuristic.cycles
        assert out.speedup >= 1.0

    def test_winner_is_validated_bit_exact(self, clean_metrics):
        out = _small_search()
        assert out.validated and out.rejected == 0
        assert clean_metrics.value("tune.layers_tuned") == 1
        assert clean_metrics.value("tune.candidates_priced") > 0

    def test_q16_search_validates(self, clean_metrics):
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=1)
        out = search_mapspace(
            p, KNM, dtype=DType.QI16F32, top_k=2, max_candidates=60,
        )
        assert out.validated
        assert out.best.candidate.rb_p * out.best.candidate.rb_q <= 13

    def test_fault_injection_rejects_candidates_and_continues(
        self, clean_metrics
    ):
        plan = FaultPlan(specs=(
            FaultSpec(site="tune.candidate", kind="corrupt_message",
                      count=2),
        ))
        inj = FaultInjector(plan)
        out = _small_search(injector=inj)
        # the first two finalists were corrupted and must be rejected;
        # the search continues and still lands a validated winner
        assert out.rejected == 2
        assert out.validated
        assert clean_metrics.value("tune.candidates_rejected") == 2

    def test_outcome_entry_roundtrips_the_plan(self, clean_metrics):
        out = _small_search()
        entry = out.entry()
        assert entry.validated
        assert entry.plan() == out.plan
        assert entry.speedup == pytest.approx(out.speedup)


# ---------------------------------------------------------------------------
class TestTuningDatabase:
    @pytest.fixture(scope="class")
    def outcome(self):
        return search_mapspace(P_SMALL, SKX, top_k=2, max_candidates=80)

    def test_roundtrip_atomic_save_and_load(self, tmp_path, outcome):
        db = TuningDatabase()
        db.record(P_SMALL, SKX, DType.F32, outcome.entry())
        path = tmp_path / "tune.json"
        db.save(path)
        assert not list(tmp_path.glob("*.tmp.*"))  # temp sibling replaced
        loaded = TuningDatabase.load(path)
        assert loaded.keys() == db.keys()
        got = loaded.lookup(P_SMALL, SKX, DType.F32)
        assert got == outcome.entry()
        assert loaded.digest() == db.digest()

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TuningDatabase.load(tmp_path / "absent.json")

    def test_corrupt_json_rejected_as_stale_artifact(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{ not json")
        with pytest.raises(TuningDBError, match="JSON"):
            TuningDatabase.load(path)
        assert issubclass(TuningDBError, StaleArtifactError)

    def test_digest_mismatch_rejected(self, tmp_path, outcome):
        db = TuningDatabase()
        db.record(P_SMALL, SKX, DType.F32, outcome.entry())
        path = tmp_path / "tune.json"
        db.save(path)
        doc = json.loads(path.read_text())
        key = next(iter(doc["entries"]))
        doc["entries"][key]["rb_p"] += 1  # tamper without re-digesting
        path.write_text(json.dumps(doc))
        with pytest.raises(TuningDBError, match="digest"):
            TuningDatabase.load(path)

    def test_foreign_format_and_version_rejected(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({"format": "repro.streams/v1"}))
        with pytest.raises(TuningDBError, match="format"):
            TuningDatabase.load(path)
        path.write_text(json.dumps(
            {"format": "repro.tune/v1", "version": 99}))
        with pytest.raises(TuningDBError, match="version"):
            TuningDatabase.load(path)

    def test_record_refuses_unvalidated_entries(self, outcome):
        import dataclasses

        bad = dataclasses.replace(outcome.entry(), validated=False)
        with pytest.raises(TuningDBError, match="unvalidated"):
            TuningDatabase().record(P_SMALL, SKX, DType.F32, bad)

    def test_entry_key_is_minibatch_independent(self):
        import dataclasses

        p64 = dataclasses.replace(P_SMALL, N=64)
        assert entry_key(P_SMALL, SKX, DType.F32) == entry_key(
            p64, SKX, DType.F32
        )
        assert entry_key(P_SMALL, SKX, DType.F32) != entry_key(
            P_SMALL, KNM, DType.F32
        )
        assert entry_key(P_SMALL, SKX, DType.F32) != entry_key(
            P_SMALL, SKX, DType.QI16F32
        )

    def test_tune_layer_records(self, tmp_path):
        db = TuningDatabase(tmp_path / "tune.json")
        out = tune_layer(
            P_SMALL, SKX, db, top_k=2, max_candidates=80,
        )
        assert len(db) == 1
        assert db.lookup(P_SMALL, SKX, DType.F32) == out.entry()


# ---------------------------------------------------------------------------
class TestMachineFingerprint:
    def test_stable_and_distinct(self):
        assert SKX.fingerprint() == SKX.fingerprint()
        assert SKX.fingerprint() != KNM.fingerprint()
        assert len(SKX.fingerprint()) == 16

    def test_sensitive_to_config_fields(self):
        import dataclasses

        tweaked = dataclasses.replace(SKX, l2_bytes=SKX.l2_bytes * 2)
        assert tweaked.fingerprint() != SKX.fingerprint()


# ---------------------------------------------------------------------------
class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def db_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tunedb") / "tune.json"
        db = TuningDatabase(path)
        tune_layer(P_SMALL, SKX, db, top_k=2, max_candidates=80)
        db.save()
        return path

    def test_tuned_engine_uses_db_plan(self, db_path, clean_metrics):
        db = TuningDatabase.load(db_path)
        entry = db.lookup(P_SMALL, SKX, DType.F32)
        eng = make_engine(Pass.FWD, P_SMALL, tuned=db_path)
        assert eng.plan == entry.plan()
        assert eng.prefetch == entry.prefetch
        assert clean_metrics.value("tune.db_hits") == 1

    def test_tuned_engine_matches_heuristic_bitwise(self, db_path, rng):
        x = rng.standard_normal(
            (P_SMALL.N, P_SMALL.C, P_SMALL.H, P_SMALL.W)
        ).astype(np.float32)
        w = rng.standard_normal(
            (P_SMALL.K, P_SMALL.C, P_SMALL.R, P_SMALL.S)
        ).astype(np.float32)
        tuned = make_engine(Pass.FWD, P_SMALL, tuned=db_path)
        heur = make_engine(Pass.FWD, P_SMALL)
        assert (
            tuned.run_nchw(x, w).tobytes() == heur.run_nchw(x, w).tobytes()
        )

    def test_missing_db_falls_back_silently(self, tmp_path, clean_metrics):
        eng = make_engine(
            Pass.FWD, P_SMALL, tuned=tmp_path / "absent.json"
        )
        heur = make_engine(Pass.FWD, P_SMALL)
        assert eng.plan == heur.plan
        assert clean_metrics.value("tune.db_missing") == 1

    def test_corrupt_db_falls_back_silently(self, tmp_path, clean_metrics):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        eng = make_engine(Pass.FWD, P_SMALL, tuned=path)
        heur = make_engine(Pass.FWD, P_SMALL)
        assert eng.plan == heur.plan
        assert clean_metrics.value("tune.db_rejected") == 1

    def test_db_without_entry_falls_back(self, db_path, clean_metrics):
        other = ConvParams(N=1, C=32, K=32, H=10, W=10, R=3, S=3, stride=1)
        eng = make_engine(Pass.FWD, other, tuned=db_path)
        assert eng.plan == make_engine(Pass.FWD, other).plan
        assert clean_metrics.value("tune.db_misses") == 1

    def test_explicit_plan_wins_over_db(self, db_path):
        heur_plan = make_engine(Pass.FWD, P_SMALL).plan
        eng = make_engine(Pass.FWD, P_SMALL, plan=heur_plan, tuned=db_path)
        assert eng.plan == heur_plan

    def test_tuned_only_applies_to_forward(self, db_path, clean_metrics):
        make_engine(Pass.BWD, P_SMALL, tuned=db_path)
        assert clean_metrics.value("tune.db_hits") == 0

    def test_kernel_cache_counts_tuned_plans(self, db_path):
        from repro.jit.kernel_cache import KernelCache

        cache = KernelCache()
        make_engine(Pass.FWD, P_SMALL, tuned=db_path, kernel_cache=cache)
        assert cache.stats()["tuned_plans"] == 1


# ---------------------------------------------------------------------------
class TestServeIntegration:
    def test_serve_config_fingerprint_tracks_db_content(self, tmp_path):
        from repro.serve import ServeConfig

        base = ServeConfig()
        missing = ServeConfig(tune_db=str(tmp_path / "absent.json"))
        # an unusable database behaves like no database
        assert missing.fingerprint() == base.fingerprint()

        db = TuningDatabase(tmp_path / "tune.json")
        tune_layer(P_SMALL, SKX, db, top_k=2, max_candidates=80)
        db.save()
        tuned = ServeConfig(tune_db=str(tmp_path / "tune.json"))
        assert tuned.fingerprint() != base.fingerprint()

    def test_etg_threads_tuned_to_conv_nodes(self, tmp_path, clean_metrics):
        from repro.gxm.etg import ExecutionTaskGraph
        from repro.models.resnet50 import resnet_mini_topology

        from repro.gxm.nodes import ConvNode

        # width=32 keeps every conv's C/K a multiple of VLEN=16 so the
        # blocked engines can run the whole net; tune the smallest conv
        # shape actually present in the topology
        topo = resnet_mini_topology(num_classes=4, width=32)
        probe = ExecutionTaskGraph(topo, (1, 16, 8, 8), engine="fast")
        shapes = {
            n.p for n in probe.nodes.values() if isinstance(n, ConvNode)
        }
        smallest = min(shapes, key=lambda q: q.C * q.K * q.H * q.W * q.R)
        db = TuningDatabase(tmp_path / "tune.json")
        tune_layer(smallest, SKX, db, top_k=2, max_candidates=60)
        db.save()
        ExecutionTaskGraph(
            topo, (1, 16, 8, 8), engine="blocked",
            tuned=str(tmp_path / "tune.json"),
        )
        # at least the tuned shape hit; every other conv shape fell back
        assert clean_metrics.value("tune.db_hits") >= 1
        assert clean_metrics.value("tune.db_misses") >= 1
