"""Collective chaos soak: sustained data-parallel training through a
drumbeat of mid-ring faults.

Gated behind ``REPRO_SOAK=1`` (CI's ``allreduce-smoke`` job may run it;
a plain ``pytest`` does not).  For ~30 seconds (``REPRO_SOAK_S``), one
ring trainer fits epoch after epoch while a probabilistic fault plan
keeps killing, hanging and corrupting workers mid-collective, and an
external chaos thread SIGKILLs a random worker between steps.

The soak's invariants are the PR's acceptance criteria, held under
sustained chaos rather than in one-shot tests:

* every step terminates -- degraded or healthy, never wedged (the fit
  loop keeps advancing until time is up);
* under the default ``recompute`` policy the final weights are
  *bitwise identical* to an undisturbed run over the same batches --
  no injected fault may perturb training numerics;
* every loss stays finite and every fault is accounted for in the
  ``collective.*`` / ``resilience.*`` counters;
* every degraded step froze exactly one digest-verified
  :mod:`repro.forensics` incident bundle, and a sampled
  ``incident replay`` of the survivors is bitwise-exact;
* the metrics JSON written at the end (``REPRO_SOAK_OUT``) is the CI
  artifact for post-mortems.
"""

import json
import os
import random
import signal
import threading
import time

import numpy as np
import pytest

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.models.resnet50 import resnet_mini_topology
from repro.obs.metrics import get_metrics
from repro.resilience import FaultPlan, FaultSpec

pytestmark = [
    pytest.mark.skipif(
        os.environ.get("REPRO_SOAK") != "1",
        reason="chaos soak runs only with REPRO_SOAK=1 (see CI "
               "allreduce-smoke)",
    ),
    pytest.mark.timeout(300),
]

SOAK_S = float(os.environ.get("REPRO_SOAK_S", "30"))
OUT = os.environ.get("REPRO_SOAK_OUT", "soak_collective_metrics.json")

SHAPE = (3, 8, 8)
NODES = 3


def _trainer(**kw):
    return ProcessParallelTrainer(
        resnet_mini_topology(num_classes=4, width=8), (2, *SHAPE),
        nodes=NODES, seed=0, step_timeout=kw.pop("step_timeout", 3.0),
        bucket_bytes=1024, max_respawns=10**6, **kw,
    )


def test_collective_chaos_soak(tmp_path):
    inc_dir = str(tmp_path / "incidents")
    ds = SyntheticImageDataset(n=24, num_classes=4, shape=SHAPE, seed=3)

    plan = FaultPlan(specs=(
        FaultSpec(site="collective.hop", kind="crash",
                  probability=0.02, count=10**6),
        FaultSpec(site="collective.hop", kind="hang",
                  probability=0.01, count=10**6),
        FaultSpec(site="collective.hop", kind="corrupt_message",
                  probability=0.02, count=10**6),
        FaultSpec(site="mp.worker.step", kind="crash",
                  probability=0.02, count=10**6),
    ), seed=7)
    get_metrics().clear()
    t = _trainer(fault_plan=plan, incident_dir=inc_dir)
    stop = threading.Event()
    chaos_kills = [0]

    def chaos():
        # an *external* killer on top of the injected faults: SIGKILL a
        # random worker every few seconds, mimicking the OOM reaper
        rng = random.Random(11)
        while not stop.wait(max(2.0, SOAK_S / 6)):
            procs = [p for p in t._procs if p is not None and p.is_alive()]
            if procs:
                os.kill(rng.choice(procs).pid, signal.SIGKILL)
                chaos_kills[0] += 1

    killer = threading.Thread(target=chaos, daemon=True)
    deadline = time.monotonic() + SOAK_S
    epochs_done = 0
    losses: list[float] = []
    try:
        killer.start()
        # keep fitting one epoch at a time (weights carry over between
        # epochs) until the wall clock runs out, accumulating the full
        # loss trajectory; at least one epoch always completes
        while epochs_done == 0 or time.monotonic() < deadline:
            t.metrics.losses.clear()
            t.metrics.accuracies.clear()
            t.fit(ds, batch_size=2, epochs=1)
            losses.extend(t.metrics.losses)
            epochs_done += 1
        stop.set()
        killer.join(timeout=30.0)
        assert not killer.is_alive(), "chaos thread hung past the soak"
        weights = [p.copy() for p in t.root.params()]
        failures = len(t.failures)
    finally:
        stop.set()
        t.close()

    snap = get_metrics().snapshot()
    counters = snap.get("counters", snap)
    doc = {
        "soak_s": SOAK_S,
        "epochs_done": epochs_done,
        "chaos_kills": chaos_kills[0],
        "failures": failures,
        "losses": losses,
        "counters": {k: v for k, v in sorted(counters.items())
                     if isinstance(v, (int, float))},
    }
    with open(OUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)

    # --- the invariants -------------------------------------------------
    assert epochs_done >= 1, "the soak never completed an epoch"
    assert all(np.isfinite(loss) for loss in losses)
    # chaos actually happened and was absorbed, not dodged
    if chaos_kills[0] or failures:
        assert get_metrics().value("resilience.respawns") > 0
    # the trainer came out of the soak alive, not wedged
    assert t.live_workers == 0  # closed cleanly

    # bitwise: replay the same number of epochs undisturbed -- under
    # ``recompute`` no injected fault may perturb training numerics, so
    # the chaos run's full loss trajectory and final weights must match
    # the healthy run exactly
    ref_losses: list[float] = []
    ref = _trainer()
    try:
        for _ in range(epochs_done):
            ref.metrics.losses.clear()
            ref.metrics.accuracies.clear()
            ref.fit(ds, batch_size=2, epochs=1)
            ref_losses.extend(ref.metrics.losses)
        ref_weights = [p.copy() for p in ref.root.params()]
    finally:
        ref.close()
    assert losses == ref_losses, (
        f"trajectory diverged over {epochs_done} epochs"
    )
    assert all(np.array_equal(a, b) for a, b in zip(weights, ref_weights))

    # forensics: every degraded step froze exactly one digest-verified
    # bundle (no capture ever failed), and a sampled replay of the
    # survivors reproduces the recomputed gradients bitwise
    from repro.forensics import list_incidents, replay_incident

    degraded = int(counters.get("resilience.degraded_steps", 0))
    assert counters.get("forensics.bundle_errors", 0) == 0
    rows = list_incidents(inc_dir)
    bad = [r for r in rows if not r["valid"]]
    assert not bad, f"invalid bundles after the soak: {bad[:3]}"
    assert len(rows) == degraded, (
        f"{len(rows)} bundles for {degraded} degraded steps"
    )
    replays = 0
    for row in rows[:3]:
        rep = replay_incident(row["path"])
        assert rep["ok"] and rep["mode"] == "train"
        replays += 1
    if degraded:
        assert replays >= 1, "chaos degraded steps but nothing replayed"
