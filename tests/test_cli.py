"""CLI subcommands (the artifact's run scripts)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_layers_defaults(self):
        args = build_parser().parse_args(["layers"])
        assert args.machine == "SKX" and args.pass_ == "F"

    def test_bad_machine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["layers", "--machine", "EPYC"])

    def test_fig_numbers(self):
        assert build_parser().parse_args(["fig", "6"]).number == 6
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig", "3"])


class TestCommands:
    def test_layers_fwd(self, capsys):
        assert main(["layers", "--machine", "SKX", "--no-baselines"]) == 0
        out = capsys.readouterr().out
        assert "thiswork" in out and "% peak" in out

    def test_layers_upd_knm(self, capsys):
        assert main(["layers", "--machine", "KNM", "--pass", "U",
                     "--no-baselines"]) == 0
        assert "update" in capsys.readouterr().out

    def test_disasm(self, capsys):
        # enough lines to get past the accumulator-zeroing prologue
        assert main(["disasm", "--layer", "4", "--machine", "SKX",
                     "--max-lines", "40"]) == 0
        out = capsys.readouterr().out
        assert "vfmadd231ps" in out or "v4fmaddps" in out

    def test_disasm_q16(self, capsys):
        assert main(["disasm", "--layer", "4", "--machine", "KNM",
                     "--dtype", "qi16f32", "--max-lines", "8"]) == 0
        assert "conv_q16" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling", "--machine", "KNM"]) == 0
        out = capsys.readouterr().out
        assert "16 nodes" in out and "img/s" in out

    def test_train_one_epoch_with_checkpoint(self, capsys, tmp_path):
        ck = tmp_path / "w.npz"
        assert main(["train", "--epochs", "1", "--batch", "16",
                     "--checkpoint", str(ck)]) == 0
        assert ck.exists()
        assert "epoch 0" in capsys.readouterr().out
