"""Structural tests of the generated forward-conv µop streams."""

import pytest

from repro.arch.isa import Op
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.types import CodegenError, DType

BASE = dict(
    vlen=4,
    rb_p=1,
    rb_q=3,
    R=3,
    S=3,
    stride=1,
    i_strides=(1000, 40, 4),
    w_strides=(500, 48, 16, 4),
    o_strides=(36, 4),
)


def gen(**over):
    return generate_conv_kernel(ConvKernelDesc(**{**BASE, **over}))


class TestStructure:
    def test_fma_count(self):
        prog = gen()
        # R*S*vlen reduction steps x rb_p*rb_q accumulators
        assert prog.fma_count == 3 * 3 * 4 * 3

    def test_flops_accounting(self):
        prog = gen()
        assert prog.flops == 2 * 3 * 3 * 4 * 3 * 4  # 2*R*S*vlen*rbq*vlen

    def test_weight_loads(self):
        prog = gen()
        wloads = sum(
            1 for u in prog.uops if u.op is Op.VLOAD and u.tensor == "W"
        )
        assert wloads == 3 * 3 * 4  # one per (r, s, x)

    def test_hoisted_output_single_load_store(self):
        prog = gen(zero_init=False)
        oloads = sum(1 for u in prog.uops if u.op is Op.VLOAD and u.tensor == "O")
        ostores = prog.count(Op.VSTORE, Op.VSTORE_NT)
        assert oloads == 3 and ostores == 3  # once per accumulator

    def test_unhoisted_output_per_tap(self):
        """Without hoisting (the small-GEMM baselines), O moves per tap."""
        prog = gen(hoist_output=False, zero_init=False)
        oloads = sum(1 for u in prog.uops if u.op is Op.VLOAD and u.tensor == "O")
        assert oloads == 3 * 3 * 3  # per (r, s) per accumulator
        assert prog.count(Op.VSTORE) == 3 * 3 * 3

    def test_zero_init_skips_output_load(self):
        prog = gen(zero_init=True)
        assert not any(
            u.op is Op.VLOAD and u.tensor == "O" for u in prog.uops
        )
        assert prog.count(Op.VZERO) == 3

    def test_fused_memop_removes_broadcasts(self):
        sep = gen(fused_memop=False)
        fused = gen(fused_memop=True)
        assert sep.count(Op.VBCAST) == sep.fma_count
        assert fused.count(Op.VBCAST) == 0
        assert fused.count(Op.VFMA_MEM) == fused.fma_count

    def test_4fma_quarters_reduction_ops(self):
        prog = gen(use_4fma=True)
        assert prog.count(Op.V4FMA) == 3 * 3 * 1 * 3  # vlen/4 groups
        # each V4FMA covers 4 reduction steps -> same MAC work
        assert prog.flops == gen().flops

    def test_cb_unroll_scales_work(self):
        assert gen(cb_unroll=2).fma_count == 2 * gen().fma_count

    def test_kb_unroll_shares_broadcasts(self):
        prog = gen(kb_unroll=2, w_skb=10000, o_skb=5000, fused_memop=False)
        # broadcasts stay per (x, pixel); FMAs double
        assert prog.count(Op.VBCAST) == gen().count(Op.VBCAST)
        assert prog.fma_count == 2 * gen().fma_count

    def test_register_budget_respected(self):
        prog = gen(rb_p=2, rb_q=8)
        assert prog.max_register() < 32

    def test_footprints_match_reads(self):
        prog = gen()
        d = prog.meta["desc"]
        assert prog.reads["I"] == d.input_footprint()
        assert prog.reads["W"] == d.weight_footprint()
        assert prog.writes["O"] == d.output_footprint()


class TestFusion:
    def test_relu_emits_vmax(self):
        prog = gen(fused=("relu",))
        assert prog.count(Op.VMAX) == 3

    def test_bias_then_relu_order(self):
        prog = gen(fused=("bias", "relu"))
        ops = [u.op for u in prog.uops]
        first_add = ops.index(Op.VADD)
        first_max = ops.index(Op.VMAX)
        assert first_add < first_max

    def test_bn_emits_mul_add(self):
        prog = gen(fused=("bn",))
        assert prog.count(Op.VMUL) == 3
        assert prog.count(Op.VADD) == 3

    def test_eltwise_add_reads_residual(self):
        prog = gen(fused=("add",))
        eloads = [u for u in prog.uops if u.tensor == "E"]
        assert len(eloads) == 3

    def test_fusion_requires_hoisting(self):
        with pytest.raises(CodegenError):
            gen(hoist_output=False, fused=("relu",))


class TestPrefetch:
    def test_l2_prefetch_covers_next_footprints(self):
        prog = gen(prefetch="l2")
        pf = [u for u in prog.uops if u.op is Op.PREFETCH2]
        tensors = {u.tensor for u in pf}
        assert tensors == {"I_pf", "W_pf", "O_pf"}
        d = prog.meta["desc"]
        line = 16  # 64B / 4B
        want = sum(
            -(-fp // line)
            for fp in (
                d.input_footprint(),
                d.weight_footprint(),
                d.output_footprint(),
            )
        )
        assert len(pf) == want

    def test_prefetches_interleaved_not_clumped(self):
        prog = gen(prefetch="l2")
        idxs = [i for i, u in enumerate(prog.uops) if u.op is Op.PREFETCH2]
        # spread across the body: first prefetch well before the end
        assert idxs[0] < len(prog.uops) // 2

    def test_none_mode(self):
        prog = gen(prefetch="none")
        assert prog.count(Op.PREFETCH1, Op.PREFETCH2) == 0


class TestValidation:
    def test_bad_prefetch_mode(self):
        with pytest.raises(CodegenError):
            gen(prefetch="l3")

    def test_bad_fused_op(self):
        with pytest.raises(CodegenError):
            gen(fused=("gelu",))

    def test_4fma_needs_divisible_vlen(self):
        with pytest.raises(CodegenError):
            gen(vlen=6, use_4fma=True)

    def test_4fma_and_fused_memop_conflict(self):
        with pytest.raises(CodegenError):
            gen(use_4fma=True, fused_memop=True)

    def test_kb_unroll_needs_strides(self):
        with pytest.raises(CodegenError):
            gen(kb_unroll=2)

    def test_too_much_register_blocking(self):
        with pytest.raises(CodegenError):
            gen(rb_p=6, rb_q=6)

    def test_variant_names_distinct(self):
        names = {
            gen().name,
            gen(zero_init=True).name,
            gen(rb_q=2).name,
            gen(fused=("relu",)).name,
            gen(use_4fma=True).name,
        }
        assert len(names) == 5


class TestQ16:
    def q16(self, **over):
        return gen(dtype=DType.QI16F32, fused_memop=False, **over)

    def test_vnni_count(self):
        prog = self.q16()
        # vlen/2 pairs per (r, s) per accumulator
        assert prog.count(Op.VVNNI) == 3 * 3 * 2 * 3

    def test_chain_limit_inserts_flushes(self):
        limited = self.q16(acc_chain_limit=2)
        free = self.q16()
        assert limited.count(Op.VCVT_I32F32) > free.count(Op.VCVT_I32F32)

    def test_4vnni_quarters_ops(self):
        prog = self.q16(use_4vnni=True)
        plain = self.q16()
        # quad ops: half the pair count when pairs=2... vlen=4 -> 2 pairs,
        # quad=4 covers both in one op per (r,s,acc) group
        assert prog.count(Op.VVNNI) < plain.count(Op.VVNNI)

    def test_odd_vlen_rejected(self):
        with pytest.raises(CodegenError):
            gen(vlen=5, dtype=DType.QI16F32)
