"""Weight-update kernel streams (dryrun/replay over Algorithm 9)."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_update_weights
from repro.conv.upd import DirectConvUpd
from repro.parallel.wu_strategies import upd_strategy_traffic
from tests.conftest import assert_close, rand_conv_tensors


class TestUpdStreams:
    def test_stream_count_matches_threads(self):
        p = ConvParams(N=4, C=16, K=16, H=8, W=8, R=3, S=3, stride=1)
        upd = DirectConvUpd(p, machine=SKX, threads=4)
        # one stream per simulated thread (G groups x T/G threads each)
        assert len(upd.streams) == upd.ncopies * max(
            1, upd.threads // upd.ncopies
        )

    def test_calls_cover_task_space_exactly_once(self):
        p = ConvParams(N=2, C=32, K=16, H=8, W=8, R=3, S=3, stride=1)
        upd = DirectConvUpd(p, machine=SKX, threads=3)
        seen = {}
        for stream in upd.streams:
            for i in range(len(stream)):
                key = (int(stream.i_off[i]), int(stream.w_off[i]),
                       int(stream.o_off[i]))
                seen[key] = seen.get(key, 0) + 1
        # every (I, dW, dO) offset triple recorded exactly once
        assert all(v == 1 for v in seen.values())
        vlen = upd.vlen
        pb = -(-p.P // upd.plan.b_p)
        expect = p.N * (p.K // vlen) * (p.C // vlen) * pb * p.R * p.S
        assert len(seen) == expect

    def test_group_assignment_partitions_minibatch(self):
        p = ConvParams(N=4, C=16, K=16, H=6, W=6, R=1, S=1, stride=1)
        strat = upd_strategy_traffic(p, SKX, threads=4, ncopies=4)
        upd = DirectConvUpd(p, machine=SKX, threads=4, strategy=strat)
        assert upd.ncopies == 4
        # each group's stream touches only its own minibatch sample
        n_stride = upd.in_layout.strides[0]
        for stream, gi in zip(upd.streams, upd.stream_group):
            ns = {int(off) // n_stride for off in stream.i_off}
            assert ns == {gi}

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_replay_matches_reference(self, threads, rng):
        p = ConvParams(N=4, C=16, K=32, H=9, W=9, R=3, S=3, stride=2)
        x, _, dy = rand_conv_tensors(p, rng)
        upd = DirectConvUpd(p, machine=KNM, threads=threads)
        assert_close(upd.run_nchw(x, dy), conv2d_update_weights(x, dy, p))

    def test_remainder_variant_used_when_p_not_divisible(self):
        p = ConvParams(N=1, C=16, K=16, H=112, W=112, R=3, S=3, stride=1)
        upd = DirectConvUpd(p, machine=SKX)
        if p.P % upd.plan.b_p:
            variants = set()
            for s in upd.streams:
                variants |= {int(k) for k in s.kinds}
            assert len(variants) == 2
