"""Weight transform tests (section II-I duality, II-K VNNI packing)."""

import numpy as np
import pytest

from repro.tensor.blocked import block_activations, block_weights
from repro.tensor.transforms import (
    bwd_weight_transform,
    vnni_pack_weights,
    vnni_unpack_weights,
)
from repro.types import ShapeError


class TestBwdTransform:
    def test_elementwise_definition(self, rng):
        """W'[c][k][R-1-r][S-1-s] == W[k][c][r][s]."""
        w = rng.standard_normal((8, 4, 3, 2)).astype(np.float32)
        bt = block_weights(w, vlen=4)
        wt = bwd_weight_transform(bt).to_kcrs()  # (C, K, R, S) logical
        for k in range(8):
            for c in range(4):
                for r in range(3):
                    for s in range(2):
                        assert wt[c, k, 2 - r, 1 - s] == w[k, c, r, s]

    def test_swaps_layout_dims(self, rng):
        w = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        wt = bwd_weight_transform(block_weights(w, vlen=4))
        assert wt.layout.k == 4 and wt.layout.c == 8

    def test_involution(self, rng):
        """Applying the transform twice recovers the original weights."""
        w = rng.standard_normal((8, 8, 3, 3)).astype(np.float32)
        bt = block_weights(w, vlen=4)
        back = bwd_weight_transform(bwd_weight_transform(bt))
        assert np.array_equal(back.to_kcrs(), w)

    def test_rejects_activations(self, rng):
        x = rng.standard_normal((1, 4, 2, 2)).astype(np.float32)
        with pytest.raises(ShapeError):
            bwd_weight_transform(block_activations(x, vlen=4))


class TestVnniPacking:
    def test_roundtrip(self, rng):
        w = (rng.standard_normal((8, 8, 3, 3)) * 100).astype(np.int16)
        bt = block_weights(w, vlen=4, dtype=np.int16)
        packed = vnni_pack_weights(bt)
        assert packed.shape == (2, 2, 3, 3, 2, 4, 2)
        back = vnni_unpack_weights(packed, bt.layout)
        assert np.array_equal(back.to_kcrs(), w)

    def test_pair_interleave(self, rng):
        """Adjacent reduction channels become the innermost pair."""
        w = np.arange(8 * 8 * 1 * 1, dtype=np.int16).reshape(8, 8, 1, 1)
        bt = block_weights(w, vlen=4, dtype=np.int16)
        packed = vnni_pack_weights(bt)
        v = bt.view()
        assert packed[0, 0, 0, 0, 0, 2, 0] == v[0, 0, 0, 0, 0, 2]
        assert packed[0, 0, 0, 0, 0, 2, 1] == v[0, 0, 0, 0, 1, 2]

    def test_bad_unpack_shape(self, rng):
        w = (rng.standard_normal((8, 8, 1, 1)) * 10).astype(np.int16)
        bt = block_weights(w, vlen=4, dtype=np.int16)
        packed = vnni_pack_weights(bt)
        with pytest.raises(ShapeError):
            vnni_unpack_weights(packed[..., :1], bt.layout)
