"""The timing model must reproduce the paper's instruction-level effects."""

import pytest

from repro.arch.machine import KNM, SKX
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.kernel_cache import KernelCache
from repro.jit.timing import time_kernel
from repro.types import DType

BASE = dict(
    vlen=16,
    rb_p=1,
    rb_q=28,
    R=3,
    S=3,
    stride=1,
    i_strides=(100000, 1000, 16),
    w_strides=(100000, 800, 256, 16),
    o_strides=(900, 16),
)


def timing(machine, **over):
    prog = generate_conv_kernel(ConvKernelDesc(**{**BASE, **over}))
    return time_kernel(prog, machine)


class TestComputeCeilings:
    def test_skx_fused_memop_penalty(self):
        """Section III-B: fused memory operands cost ~15% on SKX."""
        eff = timing(SKX, fused_memop=True).efficiency(SKX)
        assert 0.80 <= eff <= 0.88

    def test_skx_kb_unroll_near_peak(self):
        """MKL-DNN's output-channel blocking reaches ~peak compute."""
        eff = timing(
            SKX, rb_q=14, kb_unroll=2, w_skb=7200, o_skb=12544,
            fused_memop=False,
        ).efficiency(SKX)
        assert eff > 0.93

    def test_knm_4fma_near_peak(self):
        eff = timing(KNM, use_4fma=True).efficiency(KNM)
        assert eff > 0.9

    def test_knm_without_4fma_load_bound(self):
        """Plain broadcast+FMA cannot feed KNM's doubled FMA capacity."""
        t = timing(KNM, use_4fma=False, fused_memop=False)
        assert t.bottleneck == "load"
        assert t.efficiency(KNM) < 0.6


class TestLatencyExposure:
    def test_single_chain_is_latency_bound(self):
        """rb=1x1: one accumulation chain, FMA latency fully exposed --
        the autovec disease (section II-B)."""
        t = timing(SKX, rb_q=1, fused_memop=False)
        assert t.bottleneck == "fma_latency"
        assert t.efficiency(SKX) < 0.2

    def test_blocking_hides_latency(self):
        one = timing(SKX, rb_q=1, fused_memop=False)
        many = timing(SKX, rb_q=14, fused_memop=False)
        assert many.efficiency(SKX) > 3 * one.efficiency(SKX)

    def test_pixel_blocking_helps_short_rows(self):
        """Optimization (b) of II-D: RB_P blocks rows when Q is short."""
        short = timing(SKX, rb_q=4, rb_p=1, fused_memop=True)
        blocked = timing(SKX, rb_q=4, rb_p=2, fused_memop=True)
        assert blocked.efficiency(SKX) > short.efficiency(SKX)


class TestOverheadAndQ16:
    def test_call_overhead_additive(self):
        prog = generate_conv_kernel(ConvKernelDesc(**BASE))
        t0 = time_kernel(prog, SKX, call_overhead=0.0)
        t1 = time_kernel(prog, SKX, call_overhead=100.0)
        assert t1.cycles == pytest.approx(t0.cycles + 100.0)

    def test_q16_doubles_throughput_on_knm(self):
        # int16 kernels halve RB_Q: fp32+int32 accumulator pairs (II-K)
        f32 = timing(KNM, rb_q=13, use_4fma=True)
        q16 = timing(
            KNM, rb_q=13, dtype=DType.QI16F32, use_4vnni=True,
            acc_chain_limit=0,
        )
        # same MAC count, int16 path should be close to 2x fewer cycles
        speedup = (f32.cycles / f32.flops) / (q16.cycles / q16.flops)
        assert 1.6 < speedup <= 2.1

    def test_chain_limit_erodes_q16_speedup(self):
        free = timing(KNM, rb_q=13, dtype=DType.QI16F32, use_4vnni=True,
                      acc_chain_limit=0)
        limited = timing(KNM, rb_q=13, dtype=DType.QI16F32, use_4vnni=True,
                         acc_chain_limit=2)
        assert limited.cycles > free.cycles


class TestKernelCache:
    def test_memoizes_by_descriptor(self):
        cache = KernelCache()
        d1 = ConvKernelDesc(**BASE)
        d2 = ConvKernelDesc(**BASE)  # equal descriptor
        d3 = ConvKernelDesc(**{**BASE, "rb_q": 14})
        p1 = cache.get(d1, generate_conv_kernel)
        p2 = cache.get(d2, generate_conv_kernel)
        p3 = cache.get(d3, generate_conv_kernel)
        assert p1 is p2 and p1 is not p3
        assert cache.hits == 1 and cache.misses == 2
        assert len(cache) == 2

    def test_clear(self):
        cache = KernelCache()
        cache.get(ConvKernelDesc(**BASE), generate_conv_kernel)
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0

    def test_variants_listed(self):
        cache = KernelCache()
        cache.get(ConvKernelDesc(**BASE), generate_conv_kernel)
        assert any("conv_f32" in v for v in cache.variants)
