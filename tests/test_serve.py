"""repro.serve: admission, batching, warm cache, server, loadgen, HTTP.

The load-bearing guarantee is bitwise identity: whatever bucket the
dynamic batcher packs a request into -- and whatever engine/tier runs
the batch -- the probability vector must equal the one an unbatched
``InferenceSession.predict`` produces for the same image.
"""

import io
import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.gxm.inference import InferenceSession
from repro.obs.metrics import get_metrics
from repro.serve import (
    AdmissionQueue,
    InferenceRequest,
    InferenceServer,
    MicroBatcher,
    RequestShed,
    ServeConfig,
    ServerClosed,
    StreamWarmCache,
    run_closed_loop,
    run_open_loop,
    serve_http,
)
from repro.types import ReproError, ShapeError

SHAPE = (16, 8, 8)


def tiny_config(**kw):
    kw.setdefault("buckets", (1, 2, 4))
    kw.setdefault("batch_window_ms", 1.0)
    return ServeConfig(**kw)


@pytest.fixture
def clean_metrics():
    get_metrics().clear()
    yield get_metrics()
    get_metrics().clear()


def images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, *SHAPE)).astype(np.float32)


def direct_reference(cfg, xs):
    """Unbatched batch-1 predictions -- the ground truth every served
    answer must match bitwise."""
    etg = cfg.build_etg(1)
    with InferenceSession(etg) as sess:
        return [sess.predict(x[None])[0].copy() for x in xs]


# ---------------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_validate(self):
        cfg = ServeConfig()
        assert cfg.max_bucket == 16
        assert cfg.input_shape == (16, 8, 8)

    @pytest.mark.parametrize(
        "kw",
        [
            {"model": "resnet_full"},
            {"engine": "magic"},
            {"buckets": ()},
            {"buckets": (4, 2, 1)},
            {"buckets": (1, 1, 2)},
            {"buckets": (0, 1)},
            {"input_shape": (8, 8)},
            {"workers": 0},
            {"queue_capacity": 0},
        ],
    )
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ReproError):
            ServeConfig(**kw)

    def test_replay_options_fold_into_tier(self):
        from repro import ReplayOptions

        cfg = ServeConfig(engine="blocked",
                          replay=ReplayOptions(tier="stream_compiled"))
        assert cfg.execution_tier == "stream_compiled"
        # the explicit kwarg wins over the back-compat bundle
        cfg = ServeConfig(engine="blocked", execution_tier="interpret",
                          replay=ReplayOptions(tier="stream_compiled"))
        assert cfg.execution_tier == "interpret"

    def test_unknown_tier_rejected_listing_registry(self):
        from repro import EXECUTION_TIERS

        with pytest.raises(ValueError, match="unknown execution tier") as ei:
            ServeConfig(engine="blocked", execution_tier="turbo")
        for name in EXECUTION_TIERS:
            assert name in str(ei.value)

    def test_fingerprint_tracks_stream_relevant_fields(self):
        base = ServeConfig()
        assert base.fingerprint() == ServeConfig().fingerprint()
        assert base.fingerprint() != ServeConfig(width=16).fingerprint()
        assert base.fingerprint() != ServeConfig(
            buckets=(1, 2)).fingerprint()
        # runtime-only knobs must NOT invalidate a stream artifact
        assert base.fingerprint() == ServeConfig(
            workers=2, queue_capacity=8, batch_window_ms=9.0
        ).fingerprint()


# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_sheds_when_full(self, clean_metrics):
        q = AdmissionQueue(capacity=2)
        q.put(InferenceRequest(images(1)[0]))
        q.put(InferenceRequest(images(1)[0]))
        with pytest.raises(RequestShed):
            q.put(InferenceRequest(images(1)[0]))
        assert clean_metrics.value("serve.shed") == 1
        assert q.depth == 2

    def test_closed_rejects_and_unblocks(self):
        q = AdmissionQueue(capacity=4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(4, 5.0)))
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert got == [[]]
        with pytest.raises(ServerClosed):
            q.put(InferenceRequest(images(1)[0]))

    def test_take_batches_up_to_max(self):
        q = AdmissionQueue(capacity=8)
        reqs = [InferenceRequest(x) for x in images(5)]
        for r in reqs:
            q.put(r)
        batch = q.take(4, window_s=0.0)
        assert [r.id for r in batch] == [r.id for r in reqs[:4]]
        assert q.depth == 1
        assert [r.id for r in q.drain()] == [reqs[4].id]

    def test_losing_taker_waits_instead_of_returning_empty(self):
        """Two takers race one request: the winner pops it at the end of
        its batch window and the loser, finding the deque empty, must go
        back to waiting -- an empty return means shutdown and used to
        kill the losing worker thread permanently."""
        q = AdmissionQueue(capacity=8)
        q.put(InferenceRequest(images(1)[0]))
        results = []

        def taker():
            results.append(q.take(4, window_s=0.1))

        threads = [threading.Thread(target=taker) for _ in range(2)]
        for t in threads:
            t.start()
        deadline = time.perf_counter() + 5.0
        while not results and time.perf_counter() < deadline:
            time.sleep(0.01)
        time.sleep(0.3)  # well past the loser's batch window
        assert len(results) == 1 and len(results[0]) == 1
        q.close()
        for t in threads:
            t.join(timeout=5.0)
        assert sorted(len(b) for b in results) == [0, 1]


# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def test_bucket_for(self):
        b = MicroBatcher((1, 2, 4, 8))
        assert [b.bucket_for(n) for n in (1, 2, 3, 5, 8)] == [1, 2, 4, 8, 8]
        with pytest.raises(ShapeError):
            b.bucket_for(9)

    def test_build_pads_and_scatter_copies(self, clean_metrics):
        b = MicroBatcher((1, 2, 4))
        reqs = [InferenceRequest(x) for x in images(3)]
        batch, n, bucket = b.build(reqs)
        assert (n, bucket) == (3, 4)
        assert batch.shape == (4, *SHAPE)
        assert (batch[3] == 0).all()
        assert (batch[0] == reqs[0].x).all()
        probs = np.arange(4 * 5, dtype=np.float32).reshape(4, 5)
        b.scatter(reqs, probs)
        out = reqs[1].result(timeout=1.0)
        assert (out == probs[1]).all()
        out[0] = -1  # scattered rows are copies, not views
        assert probs[1, 0] == 5.0
        occ = clean_metrics.distributions()["serve.batch_occupancy"]
        assert occ["max"] == pytest.approx(0.75)


# ---------------------------------------------------------------------------
class TestBitwiseIdentity:
    """Satellite: concurrent batched serving == unbatched predict, bitwise."""

    @pytest.mark.parametrize(
        "engine,tier",
        [("fast", None), ("blocked", "compiled"), ("blocked", "interpret"),
         ("blocked", "stream_compiled")],
    )
    def test_threads_through_batcher_match_direct_predict(
        self, engine, tier, clean_metrics
    ):
        cfg = tiny_config(engine=engine, execution_tier=tier)
        xs = images(12, seed=4)
        refs = direct_reference(cfg, xs)
        server = InferenceServer(cfg)
        server.start()
        try:
            outs = [None] * len(xs)
            barrier = threading.Barrier(len(xs))

            def client(i):
                barrier.wait()  # force concurrent arrival => mixed buckets
                outs[i] = server.predict(xs[i])

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(len(xs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            server.stop()
        for i, (out, ref) in enumerate(zip(outs, refs)):
            assert out.dtype == ref.dtype
            assert (out == ref).all(), f"request {i} diverged under batching"
        # concurrency actually exercised multi-request batches
        batches = server.metrics.value("serve.batches")
        assert server.metrics.value("serve.responses") == len(xs)
        assert batches < len(xs)

    def test_multiworker_requests_complete_and_workers_survive(self):
        """Sparse sequential traffic against two workers: every request
        completes and no worker thread self-terminates on a lost
        batch-window race."""
        cfg = tiny_config(workers=2, batch_window_ms=5.0)
        xs = images(6, seed=13)
        refs = direct_reference(cfg, xs)
        with InferenceServer(cfg) as server:
            outs = []
            for x in xs:
                outs.append(server.predict(x, timeout=10.0))
                time.sleep(0.01)
            assert all(w.is_alive() for w in server._workers)
        for out, ref in zip(outs, refs):
            assert (out == ref).all()


# ---------------------------------------------------------------------------
class TestWarmCache:
    def test_artifact_round_trip_skips_dryrun(self, clean_metrics):
        cfg = tiny_config(engine="blocked", execution_tier="compiled",
                          buckets=(1, 2))
        xs = images(3, seed=9)

        cold = InferenceServer(cfg)
        boot1 = cold.start()
        assert boot1["cold_buckets"] == [1, 2] and not boot1["warm_buckets"]
        cold_recorded = clean_metrics.value("conv.streams_recorded")
        assert clean_metrics.value("conv.streams_restored") == 0
        ref = [cold.predict(x) for x in xs]
        buf = io.BytesIO()
        n_entries = cold.save_streams_artifact(buf)
        assert n_entries > 0
        digests = cold.warm_cache.digests()
        cold.stop()

        buf.seek(0)
        clean_metrics.clear()
        warm = InferenceServer(cfg)
        boot2 = warm.start(streams_artifact=buf)
        assert boot2["warm_buckets"] == [1, 2] and not boot2["cold_buckets"]
        # every forward engine replayed saved offsets instead of
        # re-dryrunning (the recorded counter is shared with the UPD
        # engines, which a full ETG still builds -- hence the delta)
        assert clean_metrics.value("conv.streams_restored") == n_entries
        assert (
            clean_metrics.value("conv.streams_recorded")
            == cold_recorded - n_entries
        )
        assert warm.warm_cache.digests() == digests
        out = [warm.predict(x) for x in xs]
        warm.stop()
        for a, b in zip(out, ref):
            assert (a == b).all()

    def test_replay_meta_round_trips_with_streams(self, clean_metrics):
        cfg = tiny_config(engine="blocked",
                          execution_tier="stream_compiled", buckets=(1, 2))
        server = InferenceServer(cfg)
        server.start()
        try:
            meta1 = server.warm_cache.replay_meta(1)
            meta2 = server.warm_cache.replay_meta(2)
            assert meta1 and meta2, (
                "stream_compiled boot must record closure metadata"
            )
            node_meta = next(iter(meta1.values()))
            assert node_meta["conv_calls"] > 0
            buf = io.BytesIO()
            server.save_streams_artifact(buf)
        finally:
            server.stop()
        buf.seek(0)
        other = StreamWarmCache(cfg.fingerprint())
        other.load(buf)
        assert other.replay_meta(1) == meta1
        assert other.replay_meta(2) == meta2

    def test_restore_rejects_unknown_fused_ops(self):
        """A stream carrying APPLY records for fused ops the engine does
        not have must fail validation at restore time -- replay would
        otherwise IndexError in the hot path."""
        from repro.streams.stream import KernelStream

        cfg = tiny_config(engine="blocked", buckets=(1,))
        etg = cfg.build_etg(1)
        state = etg.conv_stream_state()
        name, streams = next(iter(state.items()))
        frozen = streams[0]
        tampered = KernelStream(
            kinds=frozen.kinds.tolist(),
            i_off=frozen.i_off.tolist(),
            w_off=frozen.w_off.tolist(),
            o_off=frozen.o_off.tolist(),
            apply_op=frozen.apply_op.tolist(),
        )
        tampered.record_apply(7, int(frozen.o_off[0]), 0)
        state[name] = [tampered.freeze(), *streams[1:]]
        with pytest.raises(ShapeError, match="fused op"):
            cfg.build_etg(1, conv_streams=state)

    def test_rejects_foreign_fingerprint(self):
        cache = StreamWarmCache("aaaa")
        cfg = tiny_config(engine="blocked", buckets=(1,))
        etg = cfg.build_etg(1)
        cache.put(1, etg.conv_stream_state())
        buf = io.BytesIO()
        cache.save(buf)
        buf.seek(0)
        other = StreamWarmCache("bbbb")
        with pytest.raises(ReproError, match="fingerprint"):
            other.load(buf)

    def test_fast_engine_has_no_artifacts(self):
        server = InferenceServer(tiny_config(engine="fast"))
        with pytest.raises(ReproError):
            server.save_streams_artifact(io.BytesIO())
        with pytest.raises(ReproError):
            server.start(streams_artifact=io.BytesIO())


# ---------------------------------------------------------------------------
class TestServerSLO:
    def test_latency_distribution_and_stats(self, clean_metrics):
        server = InferenceServer(tiny_config())
        server.start()
        try:
            for x in images(8, seed=2):
                server.predict(x)
            stats = server.stats()
        finally:
            server.stop()
        lat = stats["distributions"]["serve.latency_ms"]
        assert lat["count"] == 8
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert stats["counters"]["serve.responses"] == 8
        assert "boot_s" in stats["boot"]
        assert stats["kernel_cache"]["variants"] >= 0

    def test_stop_fails_leftovers_and_rejects_new(self):
        server = InferenceServer(tiny_config())
        server.start()
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit(images(1)[0])

    def test_submit_validates_shape(self):
        with InferenceServer(tiny_config()) as server:
            with pytest.raises(ShapeError):
                server.submit(np.zeros((3, 8, 8), dtype=np.float32))

    def test_worker_failure_propagates_to_submitter(self, clean_metrics):
        server = InferenceServer(tiny_config())
        server.start()
        try:
            boom = RuntimeError("engine exploded")

            def bad_run(batch, bucket):
                raise boom

            server._replicas[0].run = bad_run
            with pytest.raises(RuntimeError, match="engine exploded"):
                server.predict(images(1)[0], timeout=5.0)
            assert server.metrics.value("serve.errors") == 1
        finally:
            server.stop()

    def test_stats_scoped_to_each_server_instance(self):
        """Two servers booted in one process must not see each other's
        counters or latency samples (stats used to read the process-wide
        registry and report lifetime totals)."""
        cfg = tiny_config()
        with InferenceServer(cfg) as first:
            for x in images(4, seed=21):
                first.predict(x)
            stats1 = first.stats()
        with InferenceServer(cfg) as second:
            second.predict(images(1, seed=22)[0])
            stats2 = second.stats()
        assert stats1["counters"]["serve.responses"] == 4
        assert stats2["counters"]["serve.responses"] == 1
        assert stats2["distributions"]["serve.latency_ms"]["count"] == 1


# ---------------------------------------------------------------------------
class TestCancellation:
    """A submitter that stops waiting must not cost a batch slot."""

    def test_result_timeout_cancels_the_request(self):
        req = InferenceRequest(images(1)[0])
        assert not req.cancelled
        with pytest.raises(TimeoutError):
            req.result(timeout=0.01)
        assert req.cancelled

    def test_worker_skips_cancelled_requests(self, clean_metrics):
        from repro.serve.worker import Worker

        class StubReplica:
            def run(self, batch, bucket):
                return np.ones((bucket, 5), dtype=np.float32)

        q = AdmissionQueue(capacity=8)
        abandoned = InferenceRequest(images(1)[0])
        abandoned.cancel()
        live = InferenceRequest(images(1)[0])
        q.put(abandoned)
        q.put(live)
        worker = Worker(
            "w", q, MicroBatcher((1, 2, 4)), StubReplica(),
            batch_window_s=0.0,
        )
        worker.start()
        try:
            out = live.result(timeout=5.0)
            assert out.shape == (5,)
            # the abandoned request was dropped, never computed
            assert not abandoned.done
            assert clean_metrics.value("serve.cancelled") == 1
        finally:
            q.close()
            worker.join(timeout=5.0)


# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_closed_loop_report(self, clean_metrics):
        with InferenceServer(tiny_config()) as server:
            rep = run_closed_loop(server, clients=4, requests=16, seed=1)
        assert rep.completed == 16 and rep.shed == 0 and rep.errors == 0
        assert rep.throughput_rps > 0
        assert set(rep.latency_ms) == {"p50", "p95", "p99", "mean", "max"}
        doc = json.loads(json.dumps(rep.to_dict()))
        assert doc["mode"] == "closed:4"

    def test_open_loop_counts_sheds(self, clean_metrics):
        cfg = tiny_config(queue_capacity=1, batch_window_ms=0.0)
        with InferenceServer(cfg) as server:
            rep = run_open_loop(server, rate_rps=400, duration_s=0.25,
                                seed=3)
        assert rep.completed + rep.shed + rep.errors == rep.requests
        assert rep.errors == 0
        stats = rep.server_stats
        assert stats["counters"].get("serve.shed", 0) == rep.shed


# ---------------------------------------------------------------------------
class TestHttp:
    def test_endpoints(self, clean_metrics):
        with InferenceServer(tiny_config()) as server:
            httpd = serve_http(server)
            port = httpd.server_address[1]
            base = f"http://127.0.0.1:{port}"
            try:
                x = images(1, seed=5)[0]
                ref = direct_reference(server.config, x[None])[0]
                req = urllib.request.Request(
                    f"{base}/predict",
                    data=json.dumps({"input": x.tolist()}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                doc = json.loads(urllib.request.urlopen(req).read())
                # JSON round-trips float32 losslessly via float
                assert np.asarray(
                    doc["probs"], dtype=np.float32
                ).tolist() == ref.tolist()
                assert doc["argmax"] == int(np.argmax(ref))

                health = json.loads(
                    urllib.request.urlopen(f"{base}/healthz").read())
                assert health["status"] == "ok"
                assert health["live_workers"] == health[
                    "configured_workers"
                ]
                metrics = json.loads(
                    urllib.request.urlopen(f"{base}/metrics").read())
                assert metrics["counters"]["serve.responses"] >= 1

                bad = urllib.request.Request(
                    f"{base}/predict", data=b"not json",
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as exc:
                    urllib.request.urlopen(bad)
                assert exc.value.code == 400
            finally:
                httpd.shutdown()

    def test_worker_failures_and_timeouts_get_http_statuses(self):
        """TimeoutError maps to 504 and an arbitrary engine exception to
        500 -- neither may escape the handler and drop the connection
        without a response."""

        def _raiser(err):
            def predict(x, timeout=None):
                raise err
            return predict

        with InferenceServer(tiny_config()) as server:
            httpd = serve_http(server)
            port = httpd.server_address[1]
            body = json.dumps(
                {"input": images(1, seed=7)[0].tolist()}
            ).encode()
            try:
                for err, status in (
                    (TimeoutError("request 0 not completed"), 504),
                    (RuntimeError("engine exploded"), 500),
                ):
                    server.predict = _raiser(err)
                    req = urllib.request.Request(
                        f"http://127.0.0.1:{port}/predict", data=body,
                        headers={"Content-Type": "application/json"},
                    )
                    with pytest.raises(urllib.error.HTTPError) as exc:
                        urllib.request.urlopen(req)
                    assert exc.value.code == status
                    doc = json.loads(exc.value.read())
                    assert "error" in doc
            finally:
                del server.predict  # restore the class method for stop()
                httpd.shutdown()


# ---------------------------------------------------------------------------
class TestSessionSatellites:
    """PR satellites on the inference layer itself."""

    def test_output_probabilities_accessor(self):
        cfg = tiny_config()
        etg = cfg.build_etg(2)
        with pytest.raises(ReproError, match="no forward pass"):
            etg.output_probabilities()
        etg.forward_only(images(2, seed=6))
        probs = etg.output_probabilities()
        assert probs.shape == (2, cfg.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_session_nesting_and_exception_safety(self):
        cfg = tiny_config()
        etg = cfg.build_etg(1)
        bns = InferenceSession(etg)._bns
        assert bns and all(bn.training for bn in bns)

        outer, inner = InferenceSession(etg), InferenceSession(etg)
        with outer:
            assert not any(bn.training for bn in bns)
            with inner:
                assert not any(bn.training for bn in bns)
            # inner exit must NOT flip layers back while outer is active
            assert not any(bn.training for bn in bns)
        assert all(bn.training for bn in bns)

        with pytest.raises(RuntimeError):
            with InferenceSession(etg):
                assert not any(bn.training for bn in bns)
                raise RuntimeError("mid-inference failure")
        assert all(bn.training for bn in bns)

    def test_tracer_records_serve_spans(self, clean_metrics):
        tracer = obs.enable()
        tracer.clear()
        try:
            with InferenceServer(tiny_config()) as server:
                server.predict(images(1)[0])
            names = tracer.span_names()
            assert "serve.batch" in names
            (span,) = tracer.spans("serve.batch")
            assert span.args["n"] == 1 and span.args["bucket"] == 1
        finally:
            obs.disable()
            tracer.clear()
