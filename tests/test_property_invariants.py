"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import SKX
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.reference import (
    conv2d_backward_data,
    conv2d_forward,
    conv2d_update_weights,
)
from repro.streams.rle import SegmentKind, encode_segments
from repro.streams.replay import replay
from repro.streams.stream import KernelStream
from tests.conftest import assert_close


small_convs = st.builds(
    lambda cb, kb, h, w, r, stride: ConvParams(
        N=1, C=4 * cb, K=4 * kb, H=h, W=w,
        R=min(r, h), S=min(r, w), stride=stride,
    ),
    cb=st.integers(1, 3),
    kb=st.integers(1, 3),
    h=st.integers(3, 8),
    w=st.integers(3, 8),
    r=st.sampled_from([1, 2, 3]),
    stride=st.integers(1, 2),
)


class TestConvAlgebra:
    @given(p=small_convs, seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_input(self, p, seed):
        """conv(a*x1 + b*x2, w) == a*conv(x1, w) + b*conv(x2, w)."""
        rng = np.random.default_rng(seed)
        x1 = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
        x2 = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
        w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
        a, b = 0.5, -2.0
        lhs = conv2d_forward(a * x1 + b * x2, w, p)
        rhs = a * conv2d_forward(x1, w, p) + b * conv2d_forward(x2, w, p)
        assert_close(lhs, rhs, rtol=1e-4)

    @given(p=small_convs, seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_adjoint_triple(self, p, seed):
        """The three passes are one trilinear form:
        <conv(x,w), dy> == <x, bwd(dy,w)> == <w, upd(x,dy)>."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
        w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
        dy = rng.standard_normal((p.N, p.K, p.P, p.Q)).astype(np.float32)
        t0 = float((conv2d_forward(x, w, p) * dy).sum())
        t1 = float((x * conv2d_backward_data(dy, w, p)).sum())
        t2 = float((w * conv2d_update_weights(x, dy, p)).sum())
        assert t0 == pytest.approx(t1, rel=2e-4, abs=1e-3)
        assert t0 == pytest.approx(t2, rel=2e-4, abs=1e-3)

    @given(
        cb=st.integers(1, 2), h=st.integers(4, 9), seed=st.integers(0, 99)
    )
    @settings(max_examples=15, deadline=None)
    def test_blocked_engine_translation_equivariance(self, cb, h, seed):
        """Shifting the input by one stride shifts the (interior of the)
        output by one pixel -- catches off-by-one offset bugs in the
        dryrun's address math."""
        p = ConvParams(N=1, C=16 * cb, K=16, H=h, W=h, R=3, S=3, stride=1,
                       pad_h=0, pad_w=0)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, p.C, h + 1, h + 1)).astype(np.float32)
        w = rng.standard_normal((16, p.C, 3, 3)).astype(np.float32)
        eng = DirectConvForward(p, machine=SKX, threads=2)
        y0 = eng.run_nchw(np.ascontiguousarray(x[:, :, :h, :h]), w)
        y1 = eng.run_nchw(np.ascontiguousarray(x[:, :, 1:, 1:]), w)
        assert_close(y0[:, :, 1:, 1:], y1[:, :, : p.P - 1, : p.Q - 1])


class TestStreamProperties:
    @given(
        pattern=st.lists(st.sampled_from("ca"), min_size=1, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_rle_replay_preserves_call_sequence(self, pattern):
        """For any conv/apply interleaving: segments cover the stream and
        replay dispatches the calls in recorded order."""
        st_ = KernelStream()
        for i, ch in enumerate(pattern):
            if ch == "c":
                st_.record_conv(0, i, 2 * i, 3 * i)
            else:
                st_.record_apply(0, 3 * i, kb=i, variant=0)
        frozen = st_.freeze()
        segs = encode_segments(frozen)
        calls = []
        replay(
            frozen,
            segs,
            [lambda i, w, o, pi, pw, po: calls.append(("c", i))],
            [lambda o, kb: calls.append(("a", kb))],
        )
        expect = [
            ("c", i) if ch == "c" else ("a", i)
            for i, ch in enumerate(pattern)
        ]
        assert calls == expect

    @given(
        pattern=st.lists(st.sampled_from("ca"), min_size=2, max_size=40)
    )
    @settings(max_examples=30, deadline=None)
    def test_prefetch_chain_is_next_conv(self, pattern):
        """Fig. 1's identity holds for arbitrary fusion interleavings."""
        st_ = KernelStream()
        for i, ch in enumerate(pattern):
            if ch == "c":
                st_.record_conv(0, i, 0, 0)
            else:
                st_.record_apply(0, 0, kb=0, variant=0)
        frozen = st_.freeze()
        recorded = []
        replay(
            frozen,
            encode_segments(frozen),
            [lambda i, w, o, pi, pw, po: recorded.append((i, pi))],
            [lambda o, kb: None],
        )
        conv_ids = [i for i, ch in enumerate(pattern) if ch == "c"]
        for t, (i, pi) in enumerate(recorded):
            expect_next = (
                conv_ids[t + 1] if t + 1 < len(recorded) else conv_ids[t]
            )
            assert pi == expect_next
