"""Functional semantics of the µop interpreter, op by op."""

import numpy as np
import pytest

from repro.arch.isa import KernelProgram, Op, Uop
from repro.jit.interpreter import execute_kernel
from repro.types import ReproError


def run(uops, buffers, bases=None, vlen=4, trace=None):
    prog = KernelProgram(name="t", vlen=vlen, uops=uops)
    execute_kernel(prog, buffers, bases or {}, trace=trace)


class TestBasicOps:
    def test_load_store(self):
        src = np.arange(8, dtype=np.float32)
        dst = np.zeros(8, dtype=np.float32)
        run(
            [
                Uop(Op.VLOAD, dst=0, tensor="A", offset=2),
                Uop(Op.VSTORE, src1=0, tensor="B", offset=1),
            ],
            {"A": src, "B": dst},
        )
        assert np.array_equal(dst[1:5], src[2:6])

    def test_base_offsets(self):
        src = np.arange(16, dtype=np.float32)
        dst = np.zeros(16, dtype=np.float32)
        run(
            [
                Uop(Op.VLOAD, dst=0, tensor="A", offset=1),
                Uop(Op.VSTORE, src1=0, tensor="B", offset=0),
            ],
            {"A": src, "B": dst},
            bases={"A": 4, "B": 8},
        )
        assert np.array_equal(dst[8:12], src[5:9])

    def test_broadcast(self):
        src = np.array([7.0, 3.0], dtype=np.float32)
        dst = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VBCAST, dst=0, tensor="A", offset=1),
                Uop(Op.VSTORE, src1=0, tensor="B", offset=0),
            ],
            {"A": src, "B": dst},
        )
        assert np.all(dst == 3.0)

    def test_fma(self):
        a = np.full(4, 2.0, dtype=np.float32)
        b = np.full(4, 3.0, dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VZERO, dst=0),
                Uop(Op.VLOAD, dst=1, tensor="A", offset=0),
                Uop(Op.VLOAD, dst=2, tensor="B", offset=0),
                Uop(Op.VFMA, dst=0, src1=1, src2=2),
                Uop(Op.VFMA, dst=0, src1=1, src2=2),
                Uop(Op.VSTORE, src1=0, tensor="O", offset=0),
            ],
            {"A": a, "B": b, "O": out},
        )
        assert np.all(out == 12.0)

    def test_fma_mem(self):
        w = np.arange(4, dtype=np.float32)
        i = np.array([5.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VZERO, dst=0),
                Uop(Op.VLOAD, dst=1, tensor="W", offset=0),
                Uop(Op.VFMA_MEM, dst=0, src1=1, tensor="I", offset=0),
                Uop(Op.VSTORE, src1=0, tensor="O", offset=0),
            ],
            {"W": w, "I": i, "O": out},
        )
        assert np.array_equal(out, w * 5.0)

    def test_4fma_contiguous_weights(self):
        """V4FMA: 4 chained FMAs from contiguous registers + 4-elem memop."""
        w = np.arange(16, dtype=np.float32)
        i = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        uops = [Uop(Op.VZERO, dst=0)]
        for j in range(4):
            uops.append(Uop(Op.VLOAD, dst=1 + j, tensor="W", offset=4 * j))
        uops.append(Uop(Op.V4FMA, dst=0, src1=1, tensor="I", offset=0, imm=4.0))
        uops.append(Uop(Op.VSTORE, src1=0, tensor="O", offset=0))
        run(uops, {"W": w, "I": i, "O": out})
        expect = sum(w[4 * j : 4 * j + 4] * i[j] for j in range(4))
        assert np.array_equal(out, expect)

    def test_max_and_mul_add(self):
        a = np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32)
        out = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VLOAD, dst=0, tensor="A", offset=0),
                Uop(Op.VZERO, dst=1),
                Uop(Op.VMAX, dst=0, src1=0, src2=1),
                Uop(Op.VSTORE, src1=0, tensor="O", offset=0),
            ],
            {"A": a, "O": out},
        )
        assert np.array_equal(out, np.maximum(a, 0))

    def test_cvt_scale(self):
        out = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VZERO, dst=0),
                Uop(Op.VLOAD, dst=1, tensor="A", offset=0),
                Uop(Op.VADD, dst=0, src1=0, src2=1),
                Uop(Op.VCVT_I32F32, dst=2, src1=0, imm=0.5),
                Uop(Op.VSTORE, src1=2, tensor="O", offset=0),
            ],
            {"A": np.full(4, 6.0, dtype=np.float32), "O": out},
        )
        assert np.all(out == 3.0)


class TestVnni:
    def test_pair_dot(self):
        # weights packed as [k0p0, k0p1, k1p0, k1p1, ...]: 2*vlen int16
        w = np.arange(8, dtype=np.int16)
        i = np.array([3, 5], dtype=np.int16)
        out = np.zeros(4, dtype=np.float32)
        run(
            [
                Uop(Op.VZERO, dst=0),
                Uop(Op.VLOAD, dst=1, tensor="W", offset=0),
                Uop(Op.VBCAST, dst=2, tensor="I", offset=0, imm=2.0),
                Uop(Op.VVNNI, dst=0, src1=1, src2=2),
                Uop(Op.VSTORE, src1=0, tensor="O", offset=0),
            ],
            {"W": w, "I": i, "O": out},
        )
        expect = np.array(
            [w[2 * k] * 3 + w[2 * k + 1] * 5 for k in range(4)], dtype=np.float32
        )
        assert np.array_equal(out, expect)

    def test_quad_memory_form(self):
        w = np.arange(32, dtype=np.int16)  # 4 packed vectors of 8
        i = np.arange(1, 9, dtype=np.int16)  # 4 pairs
        out = np.zeros(4, dtype=np.float32)
        uops = [Uop(Op.VZERO, dst=0)]
        for j in range(4):
            uops.append(Uop(Op.VLOAD, dst=1 + j, tensor="W", offset=8 * j))
        uops.append(Uop(Op.VVNNI, dst=0, src1=1, tensor="I", offset=0, imm=4.0))
        uops.append(Uop(Op.VSTORE, src1=0, tensor="O", offset=0))
        run(uops, {"W": w, "I": i, "O": out})
        expect = np.zeros(4)
        for j in range(4):
            wj = w[8 * j : 8 * j + 8].reshape(4, 2)
            expect += wj[:, 0] * i[2 * j] + wj[:, 1] * i[2 * j + 1]
        assert np.array_equal(out, expect)


class TestErrorsAndTrace:
    def test_uninitialized_register(self):
        with pytest.raises(ReproError, match="uninitialized"):
            run(
                [Uop(Op.VSTORE, src1=5, tensor="O", offset=0)],
                {"O": np.zeros(4, dtype=np.float32)},
            )

    def test_unbound_tensor(self):
        with pytest.raises(ReproError, match="unbound tensor"):
            run([Uop(Op.VLOAD, dst=0, tensor="Z", offset=0)], {})

    def test_error_names_uop_index_and_opcode(self):
        """Faulting errors pinpoint the µop: index and opcode name."""
        with pytest.raises(ReproError, match=r"µop 1 \(VFMA\).*uninitialized"):
            run(
                [
                    Uop(Op.VZERO, dst=0),
                    Uop(Op.VFMA, dst=0, src1=5, src2=6),
                ],
                {},
            )
        with pytest.raises(ReproError, match=r"µop 0 \(VLOAD\).*unbound"):
            run([Uop(Op.VLOAD, dst=0, tensor="Z", offset=0)], {})

    def test_prefetch_resolves_to_compute_buffer(self):
        trace = []
        buf = np.zeros(64, dtype=np.float32)
        run(
            [Uop(Op.PREFETCH2, tensor="I_pf", offset=3)],
            {"I": buf},
            bases={"I_pf": 10},
            trace=trace,
        )
        assert trace == [("I_pf", 13, 1, "prefetch2")]

    def test_trace_records_loads_stores(self):
        trace = []
        buf = np.arange(8, dtype=np.float32)
        out = np.zeros(8, dtype=np.float32)
        run(
            [
                Uop(Op.VLOAD, dst=0, tensor="A", offset=0),
                Uop(Op.VSTORE, src1=0, tensor="B", offset=4),
            ],
            {"A": buf, "B": out},
            trace=trace,
        )
        assert ("A", 0, 4, "load") in trace
        assert ("B", 4, 4, "store") in trace
