"""Register file / allocator tests."""

import pytest

from repro.arch.registers import NUM_VREGS, RegisterAllocator, RegisterFile
from repro.types import CodegenError


class TestRegisterFile:
    def test_default_is_avx512(self):
        rf = RegisterFile()
        assert rf.num_regs == 32
        assert rf.vlen(4) == 16  # fp32
        assert rf.vlen(2) == 32  # int16


class TestAllocator:
    def test_sequential_ids(self):
        a = RegisterAllocator()
        regs = [a.alloc() for _ in range(5)]
        assert regs == [0, 1, 2, 3, 4]

    def test_exhaustion_raises_codegen_error(self):
        a = RegisterAllocator()
        for _ in range(NUM_VREGS):
            a.alloc()
        with pytest.raises(CodegenError, match="register blocking"):
            a.alloc()

    def test_free_and_reuse(self):
        a = RegisterAllocator()
        r0 = a.alloc("x")
        a.free_named("x")
        assert a.alloc() == r0

    def test_double_free(self):
        a = RegisterAllocator()
        r = a.alloc()
        a.free(r)
        with pytest.raises(CodegenError, match="double free"):
            a.free(r)

    def test_named_lookup(self):
        a = RegisterAllocator()
        a.alloc("wvec")
        assert a.get("wvec") == 0

    def test_duplicate_name(self):
        a = RegisterAllocator()
        a.alloc("acc")
        with pytest.raises(CodegenError, match="already allocated"):
            a.alloc("acc")

    def test_alloc_block_contiguous(self):
        """4FMA/4VNNI codegen relies on contiguity of fresh blocks."""
        a = RegisterAllocator()
        block = a.alloc_block(8, "acc")
        assert block == list(range(8))

    def test_live_count(self):
        a = RegisterAllocator()
        a.alloc_block(10, "acc")
        assert a.live_count == 10
