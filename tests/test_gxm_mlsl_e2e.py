"""MLSL simulation and the Fig. 9 end-to-end model."""

import pytest

from repro.arch.machine import KNM, SKX
from repro.gxm.e2e import dual_socket, estimate_training, fig9_scaling
from repro.gxm.mlsl import MLSLSimulator, ring_allreduce_time
from repro.perf.references import PAPER_MEASURED, REFERENCE_IMG_PER_S


class TestRingAllreduce:
    def test_zero_for_single_node(self):
        assert ring_allreduce_time(1e9, 1, 12.5e9, 1e-6) == 0.0

    def test_asymptotic_bandwidth_term(self):
        """For large buffers, time -> 2*bytes/link_bw as nodes grow."""
        t = ring_allreduce_time(1e9, 64, 12.5e9, 0.0)
        assert t == pytest.approx(2 * (63 / 64) * 1e9 / 12.5e9)

    def test_latency_term_scales_with_nodes(self):
        small = ring_allreduce_time(1.0, 4, 12.5e9, 1e-6)
        big = ring_allreduce_time(1.0, 16, 12.5e9, 1e-6)
        assert big > small

    def test_monotone_in_bytes(self):
        a = ring_allreduce_time(1e6, 8, 12.5e9, 1e-6)
        b = ring_allreduce_time(1e8, 8, 12.5e9, 1e-6)
        assert b > a


class TestOverlap:
    def test_small_comm_mostly_hidden(self):
        sim = MLSLSimulator(KNM)
        buckets = [(1e6, 0.05) for _ in range(10)]  # 1 MB per 50 ms compute
        it, exposed = sim.iteration_time(16, 0.1, buckets)
        # only the final bucket's ring tail is exposed (<0.5 ms of 600 ms)
        tail = ring_allreduce_time(1e6, 16, KNM.link_bw, KNM.link_latency_s)
        assert exposed == pytest.approx(tail)
        assert it == pytest.approx(0.1 + 0.5 + tail)

    def test_huge_comm_exposed(self):
        sim = MLSLSimulator(KNM)
        buckets = [(1e10, 0.001)]  # 10 GB gradient, 1 ms compute
        it, exposed = sim.iteration_time(16, 0.0, buckets)
        assert exposed > 1.0

    def test_single_node_no_comm(self):
        sim = MLSLSimulator(KNM)
        it, exposed = sim.iteration_time(1, 0.1, [(1e9, 0.2)])
        assert exposed == 0.0 and it == pytest.approx(0.3)

    def test_last_bucket_tail_exposed(self):
        """The final layer's all-reduce has no compute left to hide under."""
        sim = MLSLSimulator(KNM)
        ar = ring_allreduce_time(1e8, 16, KNM.link_bw, KNM.link_latency_s)
        it, exposed = sim.iteration_time(16, 0.0, [(1e8, 0.0)])
        assert exposed == pytest.approx(ar)


class TestFig9:
    @pytest.fixture(scope="class")
    def knm_curve(self):
        return fig9_scaling("KNM")

    @pytest.fixture(scope="class")
    def skx_curve(self):
        return fig9_scaling("SKX")

    def test_knm_single_node_band(self, knm_curve):
        """Paper: 192 img/s on one KNM."""
        assert knm_curve[0].imgs_per_s == pytest.approx(192, rel=0.20)

    def test_skx_single_node_band(self, skx_curve):
        """Paper: 136 img/s on one dual-socket SKX node."""
        assert skx_curve[0].imgs_per_s == pytest.approx(136, rel=0.25)

    def test_16_node_parallel_efficiency_near_90(self, knm_curve, skx_curve):
        """Paper: ~90% parallel efficiency at 16 nodes (against the
        reduced-compute-core baseline; ~80% against the full node)."""
        for curve in (knm_curve, skx_curve):
            last = curve[-1]
            assert last.nodes == 16
            assert 0.75 <= last.parallel_efficiency <= 1.0

    def test_16_node_throughput_bands(self, knm_curve, skx_curve):
        assert knm_curve[-1].imgs_per_s == pytest.approx(2430, rel=0.25)
        assert skx_curve[-1].imgs_per_s == pytest.approx(1696, rel=0.35)

    def test_scaling_is_monotone(self, knm_curve):
        rates = [p.imgs_per_s for p in knm_curve]
        assert rates == sorted(rates)

    def test_beats_tensorflow_mkldnn_by_1p5_to_2p3(self, skx_curve):
        """Section IV: end-to-end 1.5x-2.3x over optimized TensorFlow."""
        tf = REFERENCE_IMG_PER_S[("resnet50", "2S-SKX TF+MKL-DNN [24]")]
        ratio = skx_curve[0].imgs_per_s / tf
        assert 1.3 <= ratio <= 2.5

    def test_knm_competitive_with_p100(self, knm_curve):
        """Paper: KNM 192 vs P100 219 img/s -- same ballpark."""
        p100 = REFERENCE_IMG_PER_S[("resnet50", "P100+cuDNN (TF, fp32) [23]")]
        assert knm_curve[0].imgs_per_s / p100 > 0.7


class TestEstimateBreakdown:
    def test_components_positive(self):
        est = estimate_training(KNM, "resnet50")
        for v in (est.conv_fwd_s, est.conv_bwd_s, est.conv_upd_s,
                  est.nonconv_s, est.framework_s):
            assert v > 0

    def test_bwd_upd_costlier_than_fwd(self):
        est = estimate_training(KNM, "resnet50")
        assert est.conv_bwd_s + est.conv_upd_s > est.conv_fwd_s

    def test_dual_socket_scales_but_not_2x(self):
        one = estimate_training(SKX, "resnet50", minibatch=28)
        two = estimate_training(dual_socket(SKX), "resnet50", minibatch=28)
        speedup = one.iteration_s / two.iteration_s
        assert 1.3 < speedup < 2.0

    def test_grad_bytes_near_resnet50_weights(self):
        est = estimate_training(KNM, "resnet50")
        # ResNet-50 conv weights ~= 23M params (excluding fc)
        assert 60e6 < est.grad_bytes < 120e6

    def test_inception_estimate_runs(self):
        est = estimate_training(KNM, "inception_v3")
        assert est.imgs_per_s > 0
