"""The figure-dataset API used by benches/examples/CLI."""

import pytest

from repro.arch.machine import KNM, SKX
from repro.perf.sweep import (
    FigureData,
    inception_averages,
    resnet50_forward_sweep,
    resnet50_lowprecision_sweep,
    resnet50_pass_sweep,
)
from repro.types import Pass


@pytest.fixture(scope="module")
def fig4():
    return resnet50_forward_sweep("SKX")


class TestForwardSweep:
    def test_all_series_present(self, fig4):
        assert set(fig4.series) == {
            "thiswork", "mkl", "im2col", "libxsmm", "blas", "autovec"
        }
        assert all(len(v) == 20 for v in fig4.series.values())

    def test_layer_ids(self, fig4):
        assert fig4.layer_ids == list(range(1, 21))

    def test_efficiency_attached(self, fig4):
        assert len(fig4.efficiency["thiswork"]) == 20
        assert all(0 < e <= 1 for e in fig4.efficiency["thiswork"])

    def test_table_renders(self, fig4):
        text = fig4.table()
        assert "thiswork" in text and "layer" in text
        assert len(text.splitlines()) == 2 + len(fig4.series)

    def test_no_baselines_mode(self):
        fig = resnet50_forward_sweep(SKX, baselines=False)
        assert set(fig.series) == {"thiswork", "mkl"}

    def test_accepts_machine_object_or_name(self):
        a = resnet50_forward_sweep(SKX, baselines=False)
        b = resnet50_forward_sweep("SKX", baselines=False)
        assert a.series["thiswork"] == b.series["thiswork"]


class TestPassSweeps:
    def test_bwd(self):
        fig = resnet50_pass_sweep("KNM", Pass.BWD)
        assert "backward" in fig.title
        assert len(fig.series["thiswork"]) == 20

    def test_upd(self):
        fig = resnet50_pass_sweep(SKX, Pass.UPD)
        assert all(v > 0 for v in fig.series["thiswork"])

    def test_lowprecision(self):
        fig = resnet50_lowprecision_sweep(Pass.FWD)
        assert set(fig.series) == {"fp32", "int16", "speedup"}
        assert all(1.0 <= s <= 2.2 for s in fig.series["speedup"])


class TestInceptionAverages:
    def test_both_impls(self):
        avgs = inception_averages(SKX)
        assert set(avgs) == {"thiswork", "mkl"}
        for f, b, u in avgs.values():
            assert f > 0 and b > 0 and u > 0
