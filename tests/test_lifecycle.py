"""Request-lifecycle hardening: deadlines, backpressure, breaker,
client policy, drain, hot reload with canary + rollback.

The acceptance-critical invariants:

* a batch whose every row missed its deadline is **never replayed**
  (``serve.deadline_expired`` moves, ``serve.batches`` does not);
* a reload whose canary fails **rolls back** with zero failed client
  requests -- the old weights never leave service;
* a successful reload changes served outputs (bitwise equal to a fresh
  server booted on the new weights) without dropping or hanging any
  in-flight request.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.gxm.checkpoint import load_checkpoint, save_checkpoint
from repro.gxm.inference import InferenceSession
from repro.gxm.nodes import _LayerNode
from repro.obs.metrics import Ewma, MetricsRegistry
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.serve import (
    AdmissionQueue,
    CanaryError,
    CircuitBreaker,
    ClientConfig,
    DeadlineExceeded,
    InferenceRequest,
    InferenceServer,
    RequestShed,
    ServeClient,
    ServeConfig,
    ServerClosed,
    run_closed_loop,
    serve_http,
)
from repro.serve.http import _make_handler
from repro.types import ReproError, ShapeError

SHAPE = (16, 8, 8)


def tiny_config(**kw):
    kw.setdefault("buckets", (1, 2, 4))
    kw.setdefault("batch_window_ms", 1.0)
    return ServeConfig(**kw)


def images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, *SHAPE)).astype(np.float32)


def make_checkpoint(tmp_path, cfg, seed, name):
    """Weights for ``cfg``'s topology initialised from ``seed``."""
    etg = replace(cfg, seed=seed).build_etg(1)
    path = str(tmp_path / name)
    save_checkpoint(etg, path)
    return path


def make_nan_checkpoint(tmp_path, cfg, name):
    """A structurally valid checkpoint whose weights poison the canary.

    The classifier head is the right place to poison: a NaN conv weight
    gets laundered back to finite by ReLU (``where(x > 0, x, 0)`` picks
    0 for NaN), but NaN logits make the softmax output NaN."""
    from repro.layers.fc import Linear

    etg = cfg.build_etg(1)
    fc = next(
        n for n in etg.nodes.values()
        if isinstance(n, _LayerNode) and isinstance(n.layer, Linear)
    )
    fc.layer.weight[...] = np.nan
    path = str(tmp_path / name)
    save_checkpoint(etg, path)
    return path


def reference_probs(cfg, checkpoint, x):
    """Unbatched ground truth for one image under ``checkpoint``."""
    etg = cfg.build_etg(1)
    if checkpoint:
        load_checkpoint(etg, checkpoint)
    with InferenceSession(etg) as sess:
        return sess.predict(x[None])[0].copy()


def slow_plan(delay_s, count=64):
    return FaultPlan((FaultSpec(site="serve.worker.slow", kind="slow",
                                delay_s=delay_s, count=count),))


# ---------------------------------------------------------------------------
class TestEwma:
    def test_empty_then_converges(self):
        e = Ewma(alpha=0.5)
        assert e.value is None
        e.update(1.0)
        assert e.value == 1.0
        for _ in range(64):
            e.update(3.0)
        assert abs(e.value - 3.0) < 1e-6

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha=alpha)


class TestFaultVocabulary:
    def test_new_kinds_accepted(self):
        FaultSpec(site="serve.worker.slow", kind="slow", delay_s=0.01)
        FaultSpec(site="serve.reload.canary_fail", kind="canary_fail")

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec(site="s", kind="slow", delay_s=-0.1)


# ---------------------------------------------------------------------------
class TestServeConfigValidation:
    """Satellite: bad lifecycle knobs fail loudly as ValueError."""

    @pytest.mark.parametrize(
        "kw",
        [
            {"queue_capacity": 0},
            {"queue_capacity": -3},
            {"batch_window_ms": -1.0},
            {"buckets": ()},
            {"max_queue_wait_ms": 0.0},
            {"max_queue_wait_ms": -5.0},
        ],
    )
    def test_rejected_as_valueerror(self, kw):
        with pytest.raises(ValueError):
            ServeConfig(**kw)
        with pytest.raises(ReproError):  # old vocabulary still works
            ServeConfig(**kw)

    def test_message_names_the_field(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            ServeConfig(queue_capacity=0)
        with pytest.raises(ValueError, match="batch_window_ms"):
            ServeConfig(batch_window_ms=-2.0)
        with pytest.raises(ValueError, match="buckets"):
            ServeConfig(buckets=())


# ---------------------------------------------------------------------------
class TestDeadlines:
    def test_result_converts_deadline_to_deadline_exceeded(self):
        req = InferenceRequest(
            images(1)[0], deadline=time.perf_counter() + 0.02
        )
        with pytest.raises(DeadlineExceeded):
            req.result(timeout=10.0)
        assert req.cancelled

    def test_queue_drops_expired_before_batching(self):
        reg = MetricsRegistry()
        q = AdmissionQueue(capacity=8, metrics=reg)
        dead = InferenceRequest(
            images(1)[0], deadline=time.perf_counter() - 0.01
        )
        live = InferenceRequest(images(1)[0])
        q.put(dead)
        q.put(live)
        batch = q.take(4, 0.0)
        assert batch == [live]
        assert reg.value("serve.deadline_expired") == 1
        with pytest.raises(DeadlineExceeded):
            dead.result(0.0)

    def test_expired_batch_is_never_replayed(self):
        """The acceptance criterion: under slow-worker injection every
        deadlined request expires and the engine runs zero batches."""
        injector = FaultInjector(slow_plan(0.08, count=16))
        server = InferenceServer(
            tiny_config(workers=1), fault_injector=injector
        )
        server.start()
        try:
            reqs = [
                server.submit(
                    x, deadline=time.perf_counter() + 0.02
                )
                for x in images(3, seed=5)
            ]
            for req in reqs:
                with pytest.raises(DeadlineExceeded):
                    req.result(timeout=5.0)
            deadline = time.perf_counter() + 5.0
            while (
                server.metrics.value("serve.deadline_expired") < 3
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
            assert server.metrics.value("serve.deadline_expired") == 3
            assert server.metrics.value("serve.batches") == 0
            # and the pipeline recovers: an undeadlined request is served
            out = server.predict(images(1, seed=6)[0], timeout=10.0)
            assert out.shape == (server.config.num_classes,)
            assert server.metrics.value("serve.batches") >= 1
        finally:
            server.stop()

    def test_deadline_generous_enough_is_honoured(self):
        with InferenceServer(tiny_config()) as server:
            x = images(1)[0]
            probs = server.predict(
                x, deadline=time.perf_counter() + 30.0
            )
            assert probs.shape == (server.config.num_classes,)


# ---------------------------------------------------------------------------
class TestAdaptiveBackpressure:
    def test_sheds_on_estimated_wait_not_depth(self):
        reg = MetricsRegistry()
        q = AdmissionQueue(
            capacity=1000, metrics=reg, max_wait_s=0.05, workers=1
        )
        # one observed batch at 1s/request: the EWMA now predicts any
        # queued request waits ~1s -- way over the 50ms budget
        q.record_service(2.0, 2)
        q.put(InferenceRequest(images(1)[0]))  # depth 0 -> est 0, admits
        with pytest.raises(RequestShed, match="estimated queue wait"):
            q.put(InferenceRequest(images(1)[0]))
        assert reg.value("serve.shed_backpressure") == 1
        assert reg.value("serve.shed") == 1
        assert q.depth == 1  # nowhere near the capacity of 1000

    def test_no_shedding_before_evidence(self):
        q = AdmissionQueue(capacity=10, max_wait_s=0.0001, workers=1,
                           metrics=MetricsRegistry())
        for x in images(5):
            q.put(InferenceRequest(x))  # optimistic start: no EWMA yet
        assert q.depth == 5

    def test_server_wires_the_budget(self):
        server = InferenceServer(tiny_config(max_queue_wait_ms=20.0))
        assert server.queue.max_wait_s == pytest.approx(0.02)
        health = server.health()
        assert "estimated_wait_ms" in health


# ---------------------------------------------------------------------------
class _Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def make(self, **kw):
        clock = _Clock()
        kw.setdefault("window", 8)
        kw.setdefault("error_threshold", 0.5)
        kw.setdefault("min_volume", 4)
        kw.setdefault("reset_s", 1.0)
        kw.setdefault("probes", 2)
        kw.setdefault("metrics", MetricsRegistry())
        return CircuitBreaker(clock=clock, **kw), clock

    def test_trips_on_error_rate_then_fast_fails(self):
        b, _ = self.make()
        for _ in range(3):
            b.record_failure()
            assert b.state == "closed"  # below min_volume
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b._metrics.value("serve.breaker_open") == 1
        assert b._metrics.value("serve.breaker_fast_fail") == 1

    def test_cold_breaker_needs_min_volume(self):
        b, _ = self.make()
        b.record_failure()  # 1/1 = 100% error rate, but volume 1
        assert b.state == "closed" and b.allow()

    def test_half_open_probes_then_close(self):
        b, clock = self.make()
        for _ in range(4):
            b.record_failure()
        assert b.state == "open"
        clock.t += 1.0
        assert b.state == "half_open"
        assert b.allow() and b.allow()  # two probe slots
        assert not b.allow()  # third concurrent probe rejected
        b.record_success()
        assert b.state == "half_open"  # one success is not enough
        b.record_success()
        assert b.state == "closed"
        assert b.allow()

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        b, clock = self.make()
        for _ in range(4):
            b.record_failure()
        clock.t += 1.0
        assert b.state == "half_open" and b.allow()
        b.record_failure()
        assert b.state == "open"
        clock.t += 0.5
        assert b.state == "open"  # cool-down restarted at the re-trip
        clock.t += 0.6
        assert b.state == "half_open"

    def test_snapshot(self):
        b, _ = self.make()
        b.record_failure()
        b.record_success()
        snap = b.snapshot()
        assert snap["state"] == "closed"
        assert snap["window"] == 2
        assert snap["error_rate"] == pytest.approx(0.5)


# ---------------------------------------------------------------------------
class _StubServer:
    """Scriptable stand-in for an InferenceServer: each entry of
    ``script`` is either an exception class to raise at submit, or
    ``"ok"`` / ``"pending"`` for a resolved / never-resolving request."""

    def __init__(self, script, num_classes=8):
        self.script = list(script)
        self.calls = 0
        self.num_classes = num_classes

    def submit(self, x, deadline=None):
        action = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        if isinstance(action, type) and issubclass(action, BaseException):
            raise action("scripted")
        req = InferenceRequest(np.asarray(x), deadline=deadline)
        if action == "ok":
            probs = np.full(self.num_classes, 1.0 / self.num_classes,
                            dtype=np.float32)
            req._resolve(probs)
        return req  # "pending": never resolves


class TestServeClient:
    CFG = ClientConfig(timeout_s=0.2, max_retries=2,
                       backoff_base_s=0.001, backoff_max_s=0.002)

    def test_retries_shed_then_succeeds(self):
        stub = _StubServer([RequestShed, RequestShed, "ok"])
        client = ServeClient(stub, config=self.CFG)
        probs = client.predict(images(1)[0])
        assert probs.shape == (8,)
        stats = client.stats()
        assert stats["retries"] == 2
        assert stats["completed"] == 1
        assert stub.calls == 3

    def test_exhausted_retries_raise_shed(self):
        stub = _StubServer([RequestShed])
        client = ServeClient(stub, config=self.CFG)
        with pytest.raises(RequestShed):
            client.predict(images(1)[0])
        stats = client.stats()
        assert stats["retries"] == 2  # max_retries, then gave up
        assert stats["shed_failures"] == 1
        assert stub.calls == 3

    def test_never_retries_bad_request(self):
        stub = _StubServer([ShapeError])
        client = ServeClient(stub, config=self.CFG)
        with pytest.raises(ShapeError):
            client.predict(images(1)[0])
        assert stub.calls == 1
        assert client.stats()["retries"] == 0

    def test_never_retries_timeout(self):
        stub = _StubServer(["pending"])
        client = ServeClient(stub, config=self.CFG)
        with pytest.raises(TimeoutError):
            client.predict(images(1)[0])
        assert stub.calls == 1
        assert client.stats()["timeouts"] == 1

    def test_never_retries_deadline(self):
        stub = _StubServer(["pending"])
        client = ServeClient(stub, config=self.CFG)
        with pytest.raises(DeadlineExceeded):
            client.predict(images(1)[0], deadline_ms=20.0)
        assert stub.calls == 1
        assert client.stats()["deadline_exceeded"] == 1

    def test_no_retry_past_the_deadline(self):
        cfg = ClientConfig(timeout_s=1.0, max_retries=5,
                           backoff_base_s=0.2, backoff_max_s=0.2,
                           jitter=0.0)
        stub = _StubServer([RequestShed])
        client = ServeClient(stub, config=cfg)
        t0 = time.perf_counter()
        with pytest.raises(RequestShed):
            client.predict(images(1)[0], deadline_ms=50.0)
        # backoff (200ms) exceeds the deadline budget (50ms): the client
        # must give up instead of sleeping into a worthless retry
        assert time.perf_counter() - t0 < 0.15
        assert stub.calls == 1

    def test_breaker_fast_fails_client_side(self):
        breaker = CircuitBreaker(
            window=4, min_volume=2, error_threshold=0.5,
            metrics=MetricsRegistry(),
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        stub = _StubServer(["ok"])
        client = ServeClient(stub, config=self.CFG, breaker=breaker)
        with pytest.raises(RequestShed, match="breaker"):
            client.predict(images(1)[0])
        assert stub.calls == 0  # never even reached the server
        assert client.stats()["breaker_fast_fails"] == 1

    def test_hedge_places_backup_and_takes_winner(self):
        cfg = ClientConfig(timeout_s=0.5, max_retries=0, hedge=True,
                           hedge_min_samples=1)
        # call 1 primes the latency window; call 2's primary hangs and
        # its hedged backup answers
        stub = _StubServer(["ok", "pending", "ok"])
        client = ServeClient(stub, config=cfg)
        client.predict(images(1)[0])
        probs = client.predict(images(1)[0])
        assert probs.shape == (8,)
        stats = client.stats()
        assert stats["hedges"] == 1
        assert stats["hedge_wins"] == 1
        assert stats["hedge_cutoff_ms"] is not None
        assert stub.calls == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ClientConfig(timeout_s=0)
        with pytest.raises(ValueError):
            ClientConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ClientConfig(jitter=1.5)

    def test_end_to_end_against_real_server(self):
        with InferenceServer(tiny_config()) as server:
            client = ServeClient(server, config=ClientConfig(timeout_s=10))
            x = images(1)[0]
            a = client.predict(x)
            b = server.predict(x, timeout=10.0)
            assert (a == b).all()


# ---------------------------------------------------------------------------
class TestDrainResume:
    def test_drain_stops_admission_resume_reopens(self):
        with InferenceServer(tiny_config()) as server:
            x = images(1)[0]
            server.predict(x, timeout=10.0)
            report = server.drain()
            assert report["drained"] and report["leftover_failed"] == 0
            with pytest.raises(ServerClosed, match="draining"):
                server.submit(x)
            health = server.health()
            assert health["status"] == "degraded" and health["draining"]
            assert server.metrics.value("serve.drains") == 1
            server.resume()
            assert not server.health()["draining"]
            assert server.predict(x, timeout=10.0).shape == (8,)

    def test_drain_timeout_fails_leftovers_instead_of_hanging(self):
        injector = FaultInjector(slow_plan(0.15, count=64))
        server = InferenceServer(
            tiny_config(workers=1, batch_window_ms=0.0),
            fault_injector=injector,
        )
        server.start()
        try:
            reqs = [server.submit(x) for x in images(8, seed=2)]
            report = server.drain(timeout_s=0.05)
            assert report["leftover_failed"] >= 1
            assert not report["drained"]
            served = failed = 0
            for req in reqs:  # nothing may hang
                try:
                    req.result(timeout=10.0)
                    served += 1
                except ServerClosed:
                    failed += 1
            assert failed == report["leftover_failed"]
            assert served + failed == len(reqs)
        finally:
            server.stop()

    def test_drain_waits_for_inflight_batches(self):
        injector = FaultInjector(slow_plan(0.1, count=1))
        server = InferenceServer(
            tiny_config(workers=1, batch_window_ms=0.0),
            fault_injector=injector,
        )
        server.start()
        try:
            req = server.submit(images(1)[0])
            time.sleep(0.02)  # let the worker take it (then stall)
            report = server.drain(timeout_s=5.0)
            assert report["drained"]
            # the in-flight batch finished before drain returned
            assert req.done
            assert req.result(0.0).shape == (8,)
        finally:
            server.stop()


# ---------------------------------------------------------------------------
class TestLifecycleBusy:
    """Satellite regression: a lifecycle operation arriving while another
    is in flight is refused deterministically (:class:`LifecycleBusy`,
    HTTP 409) -- it never queues behind the running one, never
    interleaves with it, and the running operation always completes."""

    def _stalled_draining_server(self):
        """A started server with one in-flight batch stalled in the
        worker (slow-fault) and a drain thread inside the lifecycle
        lock waiting for it."""
        injector = FaultInjector(slow_plan(0.4, count=1))
        server = InferenceServer(
            tiny_config(workers=1, batch_window_ms=0.0),
            fault_injector=injector,
        )
        server.start()
        req = server.submit(images(1)[0])
        time.sleep(0.05)  # the worker took the batch; now stalled 400ms
        report = {}

        def drainer():
            report.update(server.drain(timeout_s=10.0))

        t = threading.Thread(target=drainer)
        t.start()
        deadline = time.perf_counter() + 5.0
        while (not server._lifecycle.locked()
               and time.perf_counter() < deadline):
            time.sleep(0.005)
        assert server._lifecycle.locked()
        return server, req, t, report

    def test_concurrent_reload_and_drain_get_busy(self, tmp_path):
        from repro.serve import LifecycleBusy

        server, req, t, report = self._stalled_draining_server()
        try:
            # both a reload and a second drain racing the in-flight
            # drain are refused, immediately and typed
            with pytest.raises(LifecycleBusy):
                server.reload_checkpoint(str(tmp_path / "any.npz"))
            with pytest.raises(LifecycleBusy):
                server.drain()
            assert server.metrics.value("serve.reload.rollbacks") == 0
            t.join(timeout=10.0)
            # the original drain was untouched by the refused intruders
            assert report["drained"]
            assert req.result(0.0).shape == (8,)
            server.resume()  # lock released: lifecycle ops work again
            assert server.predict(
                images(1)[0], timeout=10.0
            ).shape == (8,)
        finally:
            server.stop()

    def test_http_maps_busy_to_409(self):
        server, _req, t, _report = self._stalled_draining_server()
        httpd = serve_http(server, port=0)
        try:
            host, port = httpd.server_address[:2]
            url = f"http://{host}:{port}"
            status, doc = _post(url, "/admin/resume")
            assert status == 409 and doc["busy"]
            t.join(timeout=10.0)
            status, doc = _post(url, "/admin/resume")
            assert status == 200 and doc["resumed"]
        finally:
            httpd.shutdown()
            server.stop()


# ---------------------------------------------------------------------------
class TestReload:
    def test_successful_reload_changes_served_outputs(self, tmp_path):
        cfg = tiny_config()
        ck_a = make_checkpoint(tmp_path, cfg, seed=11, name="a.npz")
        ck_b = make_checkpoint(tmp_path, cfg, seed=22, name="b.npz")
        x = images(1, seed=3)[0]
        ref_a = reference_probs(cfg, ck_a, x)
        ref_b = reference_probs(cfg, ck_b, x)
        assert not np.array_equal(ref_a, ref_b)

        with InferenceServer(replace(cfg, checkpoint=ck_a)) as server:
            assert (server.predict(x, timeout=10.0) == ref_a).all()
            report = server.reload_checkpoint(ck_b)
            assert report["checkpoint"] == ck_b
            assert report["checkpoint_digest"]
            assert report["buckets_canaried"] == [1, 2, 4]
            # bitwise identical to a fresh server booted on ck_b
            assert (server.predict(x, timeout=10.0) == ref_b).all()
            assert server.metrics.value("serve.reloads") == 1
            assert server.health()["checkpoint"] == ck_b

    def test_inflight_requests_survive_reload(self, tmp_path):
        """Concurrent clients across the swap: every request completes
        and every answer is bitwise old-weights or new-weights."""
        cfg = tiny_config(workers=2)
        ck_a = make_checkpoint(tmp_path, cfg, seed=11, name="a.npz")
        ck_b = make_checkpoint(tmp_path, cfg, seed=22, name="b.npz")
        x = images(1, seed=3)[0]
        ref_a = reference_probs(cfg, ck_a, x)
        ref_b = reference_probs(cfg, ck_b, x)

        with InferenceServer(replace(cfg, checkpoint=ck_a)) as server:
            stop = threading.Event()
            outputs, errors = [], []
            lock = threading.Lock()

            def hammer():
                while not stop.is_set():
                    try:
                        out = server.predict(x, timeout=10.0)
                        with lock:
                            outputs.append(out)
                    except Exception as err:  # noqa: BLE001
                        with lock:
                            errors.append(err)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            time.sleep(0.05)
            server.reload_checkpoint(ck_b)
            time.sleep(0.05)
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            assert not errors
            assert outputs
            for out in outputs:
                assert (
                    np.array_equal(out, ref_a)
                    or np.array_equal(out, ref_b)
                )
            # and the swap actually happened under load
            assert any(np.array_equal(out, ref_b) for out in outputs)

    def test_injected_canary_failure_rolls_back(self, tmp_path):
        cfg = tiny_config()
        ck_a = make_checkpoint(tmp_path, cfg, seed=11, name="a.npz")
        ck_b = make_checkpoint(tmp_path, cfg, seed=22, name="b.npz")
        x = images(1, seed=3)[0]
        ref_a = reference_probs(cfg, ck_a, x)
        injector = FaultInjector(FaultPlan((
            FaultSpec(site="serve.reload.canary_fail",
                      kind="canary_fail", count=1),
        )))
        server = InferenceServer(
            replace(cfg, checkpoint=ck_a), fault_injector=injector
        )
        server.start()
        try:
            stop = threading.Event()
            outputs, errors = [], []
            lock = threading.Lock()

            def hammer():
                while not stop.is_set():
                    try:
                        out = server.predict(x, timeout=10.0)
                        with lock:
                            outputs.append(out)
                    except Exception as err:  # noqa: BLE001
                        with lock:
                            errors.append(err)

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.03)
            with pytest.raises(CanaryError, match="rolled back"):
                server.reload_checkpoint(ck_b)
            time.sleep(0.03)
            stop.set()
            for t in threads:
                t.join(timeout=10.0)
            # zero failed client requests through the failed reload
            assert not errors
            assert all(np.array_equal(out, ref_a) for out in outputs)
            assert server.metrics.value("serve.reload.rollbacks") == 1
            assert server.metrics.value("serve.reloads") == 0
            # the old weights are still serving afterwards too
            assert (server.predict(x, timeout=10.0) == ref_a).all()
            assert server.config.checkpoint == ck_a
        finally:
            server.stop()

    def test_nan_weights_fail_the_real_canary(self, tmp_path):
        cfg = tiny_config()
        ck_a = make_checkpoint(tmp_path, cfg, seed=11, name="a.npz")
        ck_bad = make_nan_checkpoint(tmp_path, cfg, name="bad.npz")
        x = images(1, seed=3)[0]
        ref_a = reference_probs(cfg, ck_a, x)
        with InferenceServer(replace(cfg, checkpoint=ck_a)) as server:
            with pytest.raises(CanaryError, match="non-finite"):
                server.reload_checkpoint(ck_bad)
            assert server.metrics.value("serve.reload.rollbacks") == 1
            assert (server.predict(x, timeout=10.0) == ref_a).all()

    def test_missing_checkpoint_rolls_back_cleanly(self, tmp_path):
        with InferenceServer(tiny_config()) as server:
            with pytest.raises((ReproError, FileNotFoundError)):
                server.reload_checkpoint(str(tmp_path / "nope.npz"))
            assert server.metrics.value("serve.reload.rollbacks") == 1
            assert server.predict(images(1)[0], timeout=10.0) is not None

    def test_blocked_reload_rebuilds_warm_cache(self, tmp_path):
        cfg = tiny_config(engine="blocked", buckets=(1, 2))
        ck_b = make_checkpoint(tmp_path, cfg, seed=22, name="b.npz")
        x = images(1, seed=3)[0]
        with InferenceServer(cfg) as server:
            before = server.warm_cache.digests()
            assert before
            report = server.reload_checkpoint(ck_b)
            assert report["warm_cache_rebuilt"]
            after = server.warm_cache.digests()
            # same buckets cached, streams re-recorded from the live set
            assert sorted(after) == sorted(before)
            # artifact save still works against the rebuilt cache
            buf = io.BytesIO()
            assert server.save_streams_artifact(buf) == len(after)
            # and serving matches the unbatched new-weights reference
            ref_b = reference_probs(cfg, ck_b, x)
            assert (server.predict(x, timeout=30.0) == ref_b).all()


# ---------------------------------------------------------------------------
class TestSubmitRacingStop:
    """Satellite: submits racing ``stop()`` must fail fast with
    ``ServerClosed`` (or complete) -- never hang."""

    def test_no_request_hangs_across_stop(self):
        server = InferenceServer(tiny_config(workers=2))
        server.start()
        start = threading.Event()
        admitted = []
        rejected = []
        lock = threading.Lock()

        def hammer(seed):
            xs = images(10, seed=seed)
            start.wait()
            for x in xs:
                try:
                    req = server.submit(x)
                except (ServerClosed, RequestShed) as err:
                    with lock:
                        rejected.append(err)
                    continue
                with lock:
                    admitted.append(req)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        start.set()  # barrier: all 8 hammer while we stop
        time.sleep(0.005)
        server.stop()
        for t in threads:
            t.join(timeout=10.0)
            assert not t.is_alive()
        # every admitted request resolved: a result or ServerClosed,
        # within a bounded wait -- nothing may hang
        served = closed = 0
        for req in admitted:
            try:
                probs = req.result(timeout=5.0)
                assert probs.shape == (8,)
                served += 1
            except ServerClosed:
                closed += 1
        assert served + closed == len(admitted)
        assert all(isinstance(e, ServerClosed) for e in rejected)

    def test_submit_after_stop_fails_immediately(self):
        server = InferenceServer(tiny_config())
        server.start()
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit(images(1)[0])


# ---------------------------------------------------------------------------
def _post(url, path, doc=None, headers=None):
    body = json.dumps(doc or {}).encode()
    req = urllib.request.Request(
        f"{url}{path}", data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHttpLifecycle:
    @pytest.fixture
    def served(self, tmp_path):
        cfg = tiny_config()
        ck_a = make_checkpoint(tmp_path, cfg, seed=11, name="a.npz")
        ck_b = make_checkpoint(tmp_path, cfg, seed=22, name="b.npz")
        server = InferenceServer(replace(cfg, checkpoint=ck_a))
        server.start()
        httpd = serve_http(server, port=0)
        host, port = httpd.server_address[:2]
        yield server, f"http://{host}:{port}", ck_a, ck_b
        httpd.shutdown()
        server.stop()

    def test_deadline_header_maps_to_504(self, served):
        server, url, _, _ = served
        server.injector = FaultInjector(slow_plan(0.1, count=8))
        for w in server._workers:
            w.injector = server.injector
        x = images(1)[0].tolist()
        status, doc = _post(url, "/predict", {"input": x},
                            headers={"X-Deadline-Ms": "15"})
        assert status == 504
        assert "deadline" in doc["error"].lower() or "expired" in \
            doc["error"].lower()
        # the expired request never produced a batch: whichever side won
        # the race (the waiter cancelling at its deadline, or the worker
        # dropping the expired row), the engine ran nothing
        deadline = time.perf_counter() + 5.0
        while (
            server.metrics.value("serve.deadline_expired")
            + server.metrics.value("serve.cancelled") < 1
            and time.perf_counter() < deadline
        ):
            time.sleep(0.01)
        assert (
            server.metrics.value("serve.deadline_expired")
            + server.metrics.value("serve.cancelled")
        ) >= 1
        assert server.metrics.value("serve.batches") == 0

    def test_bad_deadline_header_is_400(self, served):
        _, url, _, _ = served
        x = images(1)[0].tolist()
        for bad in ("zero", "-5", "0"):
            status, _doc = _post(url, "/predict", {"input": x},
                                 headers={"X-Deadline-Ms": bad})
            assert status == 400

    def test_admin_drain_resume_roundtrip(self, served):
        server, url, _, _ = served
        x = images(1)[0].tolist()
        status, doc = _post(url, "/admin/drain", {"timeout_s": 5.0})
        assert status == 200 and doc["drained"]
        status, doc = _post(url, "/predict", {"input": x})
        assert status == 503
        status, doc = _post(url, "/admin/resume")
        assert status == 200 and doc["resumed"]
        status, doc = _post(url, "/predict", {"input": x})
        assert status == 200 and len(doc["probs"]) == 8

    def test_admin_reload_success_and_409_rollback(self, served, tmp_path):
        server, url, ck_a, ck_b = served
        x = images(1)[0]
        status, doc = _post(url, "/admin/reload", {"checkpoint": ck_b})
        assert status == 200
        assert doc["checkpoint"] == ck_b and doc["checkpoint_digest"]
        ref_b = reference_probs(server.config, ck_b, x)
        status, doc = _post(url, "/predict", {"input": x.tolist()})
        assert status == 200
        assert (np.asarray(doc["probs"], dtype=np.float32) == ref_b).all()

        # now a canary-failing reload: 409, rolled_back, still serving
        server.injector = FaultInjector(FaultPlan((
            FaultSpec(site="serve.reload.canary_fail",
                      kind="canary_fail", count=1),
        )))
        status, doc = _post(url, "/admin/reload", {"checkpoint": ck_a})
        assert status == 409 and doc["rolled_back"]
        status, doc = _post(url, "/predict", {"input": x.tolist()})
        assert status == 200
        assert (np.asarray(doc["probs"], dtype=np.float32) == ref_b).all()

    def test_admin_reload_requires_checkpoint(self, served):
        _, url, _, _ = served
        status, doc = _post(url, "/admin/reload", {})
        assert status == 500 and "checkpoint" in doc["error"]

    def test_breaker_guards_predict(self, served):
        server, url, _, _ = served
        httpd_breaker = CircuitBreaker(
            window=4, min_volume=2, error_threshold=0.5,
            metrics=server.metrics,
        )
        httpd = serve_http(server, port=0, breaker=httpd_breaker)
        try:
            host, port = httpd.server_address[:2]
            url2 = f"http://{host}:{port}"
            httpd_breaker.record_failure()
            httpd_breaker.record_failure()
            assert httpd_breaker.state == "open"
            x = images(1)[0].tolist()
            status, doc = _post(url2, "/predict", {"input": x})
            assert status == 503 and "breaker" in doc["error"]
            assert server.metrics.value("serve.breaker_fast_fail") >= 1
        finally:
            httpd.shutdown()

    def test_http_client_transport_maps_statuses(self, served):
        server, url, _, _ = served
        client = ServeClient(url, config=ClientConfig(timeout_s=10,
                                                      max_retries=0))
        x = images(1)[0]
        probs = client.predict(x)
        assert (probs == server.predict(x, timeout=10.0)).all()
        with pytest.raises(ShapeError):  # 400 -> not retried
            client.predict(np.zeros((3, 3), dtype=np.float32))


class TestClientDisconnect:
    """Satellite: a reply to a vanished client is counted, not crashed."""

    def test_broken_pipe_counted_not_raised(self):
        server = InferenceServer(tiny_config())  # unstarted: metrics only
        handler_cls = _make_handler(server, None)
        h = handler_cls.__new__(handler_cls)
        h.request_version = "HTTP/1.1"
        h.requestline = "POST /predict HTTP/1.1"
        h.client_address = ("127.0.0.1", 0)
        h.close_connection = False

        class _Gone:
            def write(self, _b):
                raise BrokenPipeError("client went away")

            def flush(self):
                pass

        h.wfile = _Gone()
        h._reply(200, {"probs": [0.5, 0.5]})  # must not raise
        assert server.metrics.value("serve.client_disconnects") == 1
        assert h.close_connection

    def test_connection_reset_counted_too(self):
        server = InferenceServer(tiny_config())
        handler_cls = _make_handler(server, None)
        h = handler_cls.__new__(handler_cls)
        h.request_version = "HTTP/1.1"
        h.requestline = "GET /metrics HTTP/1.1"
        h.client_address = ("127.0.0.1", 0)
        h.close_connection = False

        class _Reset:
            def write(self, _b):
                raise ConnectionResetError("reset by peer")

            def flush(self):
                pass

        h.wfile = _Reset()
        h._reply(200, {"ok": True})
        assert server.metrics.value("serve.client_disconnects") == 1


# ---------------------------------------------------------------------------
class TestLoadgenLifecycle:
    def test_closed_loop_reports_client_policy_columns(self):
        with InferenceServer(tiny_config()) as server:
            report = run_closed_loop(
                server, clients=4, requests=16,
                client_config=ClientConfig(timeout_s=10, max_retries=1),
            )
        assert report.completed == 16
        assert report.timeouts == 0
        doc = report.to_dict()
        for key in ("timeouts", "deadline_exceeded", "retries", "hedges",
                    "client_stats"):
            assert key in doc
        assert doc["client_stats"]["completed"] == 16

    def test_closed_loop_counts_deadline_misses(self):
        injector = FaultInjector(slow_plan(0.12, count=64))
        server = InferenceServer(
            tiny_config(workers=1), fault_injector=injector
        )
        server.start()
        try:
            report = run_closed_loop(
                server, clients=2, requests=4,
                client_config=ClientConfig(timeout_s=10, max_retries=0),
                deadline_ms=20.0,
            )
        finally:
            server.stop()
        assert report.deadline_exceeded + report.completed == 4
        assert report.deadline_exceeded >= 1
