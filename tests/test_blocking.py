"""Blocking heuristics (section II-B/C/D/J)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import KNM, SKX
from repro.conv.blocking import (
    RESERVED_REGS,
    choose_blocking,
    choose_upd_blocking,
)
from repro.conv.params import ConvParams
from repro.models.resnet50 import resnet50_layers
from repro.types import CodegenError


def params(q=56, r=3, stride=1, c=64, k=64):
    h = w = q * stride if r == 1 else q
    return ConvParams(N=1, C=c, K=k, H=h, W=w, R=r, S=r, stride=stride)


class TestRegisterBlocking:
    def test_acc_budget_respected(self):
        for q in (7, 14, 17, 28, 56, 97):
            plan = choose_blocking(params(q=q), SKX)
            assert plan.rb_p * plan.rb_q <= 32 - RESERVED_REGS

    def test_latency_hiding_chain_count(self):
        """RB_P*RB_Q must reach fma_latency*fma_ports wherever Q allows."""
        for m in (SKX, KNM):
            target = m.fma_ports * m.fma_latency
            for q in (7, 14, 28, 56):
                plan = choose_blocking(params(q=q), m)
                assert plan.rb_p * plan.rb_q >= min(target, q * 4)

    def test_short_rows_get_pixel_blocking(self):
        """Q=7 < latency window -> RB_P > 1 (optimization (b) of II-D)."""
        plan = choose_blocking(params(q=7), SKX)
        assert plan.rb_p >= 2

    def test_exact_divisors_preferred(self):
        for q in (14, 28, 56):
            plan = choose_blocking(params(q=q), SKX)
            assert q % plan.rb_q == 0
            assert not plan.has_remainder_q

    def test_remainder_variant_for_awkward_q(self):
        # Q=29 (prime): no divisor in budget -> remainder kernel (II-H)
        plan = choose_blocking(params(q=29), SKX)
        assert plan.has_remainder_q
        assert plan.rb_q_rem == 29 % plan.rb_q
        assert len(plan.variants()) >= 2

    def test_budget_cap(self):
        plan = choose_blocking(params(q=56), SKX, acc_budget_cap=13)
        assert plan.rb_p * plan.rb_q <= 13

    def test_vlen_divisibility_enforced(self):
        with pytest.raises(CodegenError):
            choose_blocking(
                ConvParams(N=1, C=24, K=16, H=8, W=8, R=1, S=1), SKX
            )

    @given(q=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_variants_cover_q(self, q):
        """Main + remainder variants must tile Q exactly."""
        plan = choose_blocking(params(q=q), SKX)
        full, rem = divmod(q, plan.rb_q)
        assert full * plan.rb_q + rem == q
        if rem:
            assert plan.rb_q_rem == rem


class TestLoopOrder:
    def test_1x1_pulls_cb_inside(self):
        assert choose_blocking(params(r=1), SKX).loop_order == "cb_inner"

    def test_3x3_keeps_cb_outer(self):
        assert choose_blocking(params(r=3), SKX).loop_order == "cb_outer"

    def test_3x3_hoists_output(self):
        assert choose_blocking(params(r=3), SKX).hoist_output


class TestCacheBlocking:
    def test_oj_block_fits_l2(self):
        for lid, p in resnet50_layers(28):
            plan = choose_blocking(p, SKX)
            rows_in = plan.oj_block * p.stride + p.R - 1
            footprint = rows_in * p.Wp * p.C * 4
            # the blocked input rows alone must not blow L2
            assert footprint <= SKX.l2_bytes or plan.oj_block == plan.rb_p

    def test_smaller_l2_means_smaller_blocks(self):
        p = params(q=56, c=256)
        big = choose_blocking(p, SKX).oj_block
        small = choose_blocking(p, SKX.scaled(l2_bytes=128 * 1024)).oj_block
        assert small <= big


class TestUpdBlocking:
    def test_large_spatial_blocked(self):
        p = ConvParams(N=1, C=64, K=64, H=112, W=112, R=3, S=3, stride=1)
        plan = choose_upd_blocking(p, KNM)
        assert plan.b_p < p.P

    def test_small_spatial_unblocked(self):
        p = ConvParams(N=1, C=64, K=64, H=7, W=7, R=3, S=3, stride=1)
        plan = choose_upd_blocking(p, SKX)
        assert (plan.b_p, plan.b_q) == (p.P, p.Q)

    def test_footprint_within_budget(self):
        for lid, p in resnet50_layers(28):
            plan = choose_upd_blocking(p, KNM)
            in_rows = plan.b_p * p.stride + p.R - 1
            in_cols = plan.b_q * p.stride + p.S - 1
            fp = (in_rows * in_cols + plan.b_p * plan.b_q) * 16 * 4
            assert fp <= KNM.l2_bytes or plan.b_p == 1
