"""Process-parallel trainer: real workers, exact numerics."""

import numpy as np
import pytest

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import Trainer
from repro.types import ReproError


def topo():
    t = TopologySpec("mp")
    d = t.data("data")
    c = t.conv("c1", d, 16, 3, relu=True)
    g = t.global_pool("gap", c)
    f = t.fc("fc", g, 4)
    t.loss("loss", f)
    return t


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageDataset(n=64, num_classes=4, shape=(16, 8, 8),
                                 seed=5)


class TestProcessParallel:
    def test_matches_in_process_data_parallel(self, dataset):
        """2 worker processes must produce the same loss trajectory as the
        in-process nodes=2 trainer (identical all-reduce math)."""
        etg = ExecutionTaskGraph(topo(), (8, 16, 8, 8), seed=13)
        ref = Trainer(etg, lr=0.05, nodes=2)
        ref.fit(dataset, batch_size=8, epochs=1)

        with ProcessParallelTrainer(
            topo(), (8, 16, 8, 8), nodes=2, lr=0.05, seed=13
        ) as mp_tr:
            mp_tr.fit(dataset, batch_size=8, epochs=1)

        assert np.allclose(
            ref.metrics.losses, mp_tr.metrics.losses, rtol=1e-5
        )

    def test_training_reduces_loss(self, dataset):
        with ProcessParallelTrainer(
            topo(), (8, 16, 8, 8), nodes=2, lr=0.05, seed=1
        ) as tr:
            tr.fit(dataset, batch_size=8, epochs=2)
        assert tr.metrics.losses[-1] < tr.metrics.losses[0]

    def test_single_node_degenerate(self, dataset):
        with ProcessParallelTrainer(
            topo(), (16, 16, 8, 8), nodes=1, lr=0.05, seed=2
        ) as tr:
            loss = None
            for x, y in dataset.batches(16, 1):
                loss = tr.train_step(x, y)
                break
        assert loss is not None and np.isfinite(loss)

    def test_invalid_node_count(self):
        with pytest.raises(ReproError):
            ProcessParallelTrainer(topo(), (8, 16, 8, 8), nodes=0)

    def test_close_idempotent(self, dataset):
        tr = ProcessParallelTrainer(topo(), (8, 16, 8, 8), nodes=2, seed=3)
        tr.close()
        tr.close()  # second close must be harmless
