"""Non-conv layers: forward semantics + gradient checks."""

import numpy as np
import pytest

from repro.layers import (
    AvgPool2D,
    BatchNorm2D,
    EltwiseSum,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLULayer,
    SoftmaxCrossEntropy,
    Split,
)


def numeric_grad(f, x, eps=1e-3):
    """Central-difference gradient of scalar f wrt array x (sampled)."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.ndindex(*x.shape)
    idxs = list(it)
    rng = np.random.default_rng(0)
    sample = [idxs[i] for i in rng.choice(len(idxs), min(20, len(idxs)),
                                          replace=False)]
    for idx in sample:
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        g[idx] = (f(xp) - f(xm)) / (2 * eps)
    return g, sample


def check_backward(layer, x, rng, rtol=2e-2):
    """<dy, layer(x)> gradient vs numeric."""
    y = layer.forward(x)
    dy = rng.standard_normal(y.shape).astype(np.float32)
    dx = layer.backward(dy)

    def loss(xv):
        return float((layer.forward(xv.astype(np.float32)) * dy).sum())

    g, sample = numeric_grad(loss, x.astype(np.float64))
    # re-prime the cache with the original input
    layer.forward(x)
    for idx in sample:
        assert dx[idx] == pytest.approx(g[idx], rel=rtol, abs=1e-2), idx


class TestReLU:
    def test_forward(self, rng):
        r = ReLULayer()
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        y = r.forward(x)
        assert np.all(y >= 0)
        assert np.array_equal(y[x > 0], x[x > 0])

    def test_backward_masks(self, rng):
        r = ReLULayer()
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        r.forward(x)
        dy = np.ones_like(x)
        dx = r.backward(dy)
        assert np.array_equal(dx != 0, x > 0)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = MaxPool2D(2).forward(x)
        assert np.array_equal(y[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        mp = MaxPool2D(2)
        mp.forward(x)
        dx = mp.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert dx.sum() == 4
        assert dx[0, 0, 1, 1] == 1  # position of 5

    def test_gradient(self, rng):
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        check_backward(MaxPool2D(2), x, rng)

    def test_stride_neq_kernel(self, rng):
        x = rng.standard_normal((1, 1, 5, 5)).astype(np.float32)
        y = MaxPool2D(3, stride=2).forward(x)
        assert y.shape == (1, 1, 2, 2)

    def test_overlapping_like_resnet_stem(self, rng):
        # 3x3/2 pool with pad 0 like GxM's pool1 on odd inputs
        x = rng.standard_normal((1, 4, 7, 7)).astype(np.float32)
        mp = MaxPool2D(3, stride=2)
        y = mp.forward(x)
        assert y.shape == (1, 4, 3, 3)
        dx = mp.backward(np.ones_like(y))
        assert dx.shape == x.shape


class TestAvgPool:
    def test_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        y = AvgPool2D(2).forward(x)
        assert y[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_gradient(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        check_backward(AvgPool2D(2), x, rng)


class TestGlobalAvgPool:
    def test_forward(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        y = GlobalAvgPool().forward(x)
        assert y.shape == (2, 3)
        assert y[1, 2] == pytest.approx(x[1, 2].mean(), rel=1e-5)

    def test_gradient(self, rng):
        x = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
        check_backward(GlobalAvgPool(), x, rng)


class TestBatchNorm:
    def test_normalizes(self, rng):
        bn = BatchNorm2D(4)
        x = (rng.standard_normal((8, 4, 5, 5)) * 3 + 2).astype(np.float32)
        y = bn.forward(x)
        assert abs(y.mean()) < 1e-5
        assert y.std() == pytest.approx(1.0, abs=1e-3)

    def test_gradient_wrt_input(self, rng):
        bn = BatchNorm2D(2)
        x = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        check_backward(bn, x, rng, rtol=5e-2)

    def test_param_grads(self, rng):
        bn = BatchNorm2D(3)
        x = rng.standard_normal((4, 3, 2, 2)).astype(np.float32)
        y = bn.forward(x)
        dy = rng.standard_normal(y.shape).astype(np.float32)
        bn.backward(dy)
        # dbeta = sum(dy) per channel
        assert np.allclose(bn.dbeta, dy.sum(axis=(0, 2, 3)), rtol=1e-4)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2D(2, momentum=0.5)
        x = (rng.standard_normal((16, 2, 4, 4)) + 3).astype(np.float32)
        bn.forward(x)
        assert np.all(bn.running_mean > 0.5)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm2D(2)
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        bn.forward(x)
        bn.training = False
        y1 = bn.forward(x[:1])
        y2 = bn.forward(x[:1])
        assert np.array_equal(y1, y2)

    def test_folded_scale_shift(self, rng):
        bn = BatchNorm2D(2)
        x = rng.standard_normal((8, 2, 4, 4)).astype(np.float32)
        bn.forward(x)
        bn.training = False
        g, b = bn.folded_scale_shift()
        fused = x[:1] * g[None, :, None, None] + b[None, :, None, None]
        assert np.allclose(bn.forward(x[:1]), fused, rtol=1e-4)


class TestLinear:
    def test_forward(self, rng):
        fc = Linear(6, 4)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        y = fc.forward(x)
        assert np.allclose(y, x @ fc.weight.T + fc.bias, rtol=1e-5)

    def test_gradients(self, rng):
        fc = Linear(5, 3)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        check_backward(fc, x, rng)
        # weight gradient: dW = dy.T @ x
        y = fc.forward(x)
        dy = rng.standard_normal(y.shape).astype(np.float32)
        fc.backward(dy)
        assert np.allclose(fc.dweight, dy.T @ x, rtol=1e-4)

    def test_shape_error(self, rng):
        from repro.types import ShapeError

        with pytest.raises(ShapeError):
            Linear(5, 3).forward(rng.standard_normal((2, 4)))


class TestSoftmaxLoss:
    def test_loss_value(self):
        sm = SoftmaxCrossEntropy()
        logits = np.log(np.array([[0.7, 0.2, 0.1]], dtype=np.float32))
        loss = sm.forward(logits, np.array([0]))
        assert loss == pytest.approx(-np.log(0.7), rel=1e-5)

    def test_gradient(self, rng):
        sm = SoftmaxCrossEntropy()
        logits = rng.standard_normal((5, 4)).astype(np.float32)
        labels = rng.integers(0, 4, 5)
        sm.forward(logits, labels)
        grad = sm.backward()

        def loss(lv):
            return SoftmaxCrossEntropy().forward(
                lv.astype(np.float32), labels
            )

        g, sample = numeric_grad(loss, logits.astype(np.float64))
        for idx in sample:
            assert grad[idx] == pytest.approx(g[idx], rel=3e-2, abs=1e-3)

    def test_accuracy(self):
        sm = SoftmaxCrossEntropy()
        logits = np.array([[5.0, 0.0], [0.0, 5.0]], dtype=np.float32)
        sm.forward(logits, np.array([0, 1]))
        assert sm.accuracy(np.array([0, 1])) == 1.0
        assert sm.accuracy(np.array([1, 0])) == 0.0


class TestSplitEltwise:
    def test_split_accumulates(self, rng):
        sp = Split(3)
        x = rng.standard_normal((2, 3)).astype(np.float32)
        sp.forward(x)
        assert sp.accumulate(np.ones_like(x)) is None
        assert sp.accumulate(np.ones_like(x)) is None
        total = sp.accumulate(np.ones_like(x))
        assert np.all(total == 3.0)

    def test_split_backward_requires_all(self, rng):
        sp = Split(2)
        sp.forward(np.zeros((1,), dtype=np.float32))
        with pytest.raises(RuntimeError):
            sp.backward(np.zeros((1,), dtype=np.float32))

    def test_eltwise_sum(self, rng):
        e = EltwiseSum(2)
        a = rng.standard_normal((2, 2)).astype(np.float32)
        b = rng.standard_normal((2, 2)).astype(np.float32)
        assert np.allclose(e.forward(a, b), a + b)
        dys = e.backward(np.ones((2, 2), dtype=np.float32))
        assert len(dys) == 2 and np.all(dys[0] == 1)
