"""GxM task profiler."""

import numpy as np
import pytest

from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.profiler import TaskProfiler
from repro.gxm.topology import TopologySpec
from repro.models.resnet50 import resnet_mini_topology


def topo():
    t = TopologySpec("t")
    d = t.data("data")
    c = t.conv("c1", d, 16, 3, relu=True)
    g = t.global_pool("gap", c)
    f = t.fc("fc", g, 4)
    t.loss("loss", f)
    return t


class TestProfiler:
    def _run(self, rng):
        etg = ExecutionTaskGraph(topo(), (8, 16, 8, 8), seed=0)
        prof = TaskProfiler(etg)
        x = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 8)
        loss = prof.step(x, y)
        return etg, prof, loss, x, y

    def test_step_matches_plain_train_step(self, rng):
        etg1 = ExecutionTaskGraph(topo(), (8, 16, 8, 8), seed=0)
        etg2 = ExecutionTaskGraph(topo(), (8, 16, 8, 8), seed=0)
        x = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 8)
        plain = etg1.train_step(x, y)
        profiled = TaskProfiler(etg2).step(x, y)
        assert plain == pytest.approx(profiled, rel=1e-6)
        assert np.allclose(
            etg1.nodes["c1"].dweight, etg2.nodes["c1"].dweight
        )

    def test_pass_breakdown_sums_to_total(self, rng):
        _, prof, _, _, _ = self._run(rng)
        p = prof.last
        assert sum(p.by_pass.values()) <= p.total_s
        assert sum(p.by_pass.values()) > 0.5 * p.total_s
        assert set(p.by_pass) == {"FWD", "BWD", "UPD"}

    def test_type_breakdown(self, rng):
        _, prof, _, _, _ = self._run(rng)
        assert "Convolution" in prof.last.by_type
        assert prof.last.by_type["Convolution"] > 0

    def test_imgs_per_s(self, rng):
        _, prof, _, _, _ = self._run(rng)
        assert prof.last.imgs_per_s == pytest.approx(
            8 / prof.last.total_s, rel=1e-6
        )

    def test_report_format(self, rng):
        _, prof, _, _, _ = self._run(rng)
        text = prof.last.report()
        assert "img/s" in text and "FWD" in text and "Convolution" in text

    def test_history_accumulates(self, rng):
        etg = ExecutionTaskGraph(topo(), (8, 16, 8, 8), seed=0)
        prof = TaskProfiler(etg)
        x = rng.standard_normal((8, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 8)
        for _ in range(3):
            prof.step(x, y)
        assert len(prof.history) == 3

    def test_residual_topology(self, rng):
        etg = ExecutionTaskGraph(
            resnet_mini_topology(num_classes=4, width=16), (4, 16, 8, 8),
            seed=0,
        )
        prof = TaskProfiler(etg)
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        loss = prof.step(x, y)
        assert np.isfinite(loss)
        assert "Eltwise" in prof.last.by_type
