"""Binary kernel encoding, LR schedules, roofline report."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.gxm.schedule import (
    ConstantLR,
    PolynomialDecay,
    StepDecay,
    WarmupThenDecay,
)
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.encoding import code_size_report, decode_program, encode_program
from repro.perf.roofline_report import layer_breakdown, roofline_table
from repro.types import DType, ReproError

BASE = dict(
    vlen=8, rb_p=1, rb_q=4, R=3, S=3, stride=1,
    i_strides=(5000, 100, 8), w_strides=(5000, 600, 200, 8),
    o_strides=(80, 8),
)


class TestEncoding:
    @pytest.mark.parametrize(
        "over",
        [
            dict(fused_memop=True, prefetch="both", fused=("bias", "relu")),
            dict(use_4fma=True, zero_init=True),
            dict(dtype=DType.QI16F32, acc_chain_limit=2),
            dict(hoist_output=False),
        ],
        ids=["fused", "4fma", "q16", "unhoisted"],
    )
    def test_roundtrip_lossless(self, over):
        prog = generate_conv_kernel(ConvKernelDesc(**{**BASE, **over}))
        back = decode_program(encode_program(prog))
        assert back.name == prog.name
        assert back.vlen == prog.vlen and back.flops == prog.flops
        assert len(back) == len(prog)
        for a, b in zip(prog.uops, back.uops):
            assert a == b

    def test_decoded_program_executes_identically(self, rng):
        from repro.jit.interpreter import execute_kernel

        prog = generate_conv_kernel(ConvKernelDesc(**BASE, zero_init=True))
        bufs1 = {
            "I": rng.standard_normal(8192).astype(np.float32),
            "W": rng.standard_normal(8192).astype(np.float32),
            "O": np.zeros(8192, dtype=np.float32),
        }
        bufs2 = {k: v.copy() for k, v in bufs1.items()}
        execute_kernel(prog, bufs1, {})
        execute_kernel(decode_program(encode_program(prog)), bufs2, {})
        assert np.array_equal(bufs1["O"], bufs2["O"])

    def test_bad_magic(self):
        with pytest.raises(ReproError):
            decode_program(b"NOPE1234")

    def test_compactness(self):
        """The encoding should be a handful of bytes per µop -- the point
        of the code-size metric."""
        prog = generate_conv_kernel(ConvKernelDesc(**BASE))
        size = len(encode_program(prog))
        assert size / len(prog) < 12

    def test_code_size_report(self):
        progs = [
            generate_conv_kernel(ConvKernelDesc(**BASE)),
            generate_conv_kernel(ConvKernelDesc(**BASE, zero_init=True)),
        ]
        rep = code_size_report(progs)
        assert "TOTAL" in rep and str(len(progs[0])) in rep


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).lr(0) == 0.1
        assert ConstantLR(0.1).lr(10**6) == 0.1

    def test_step_decay(self):
        s = StepDecay(1.0, [10, 20], gamma=0.1)
        assert s.lr(0) == 1.0
        assert s.lr(10) == pytest.approx(0.1)
        assert s.lr(25) == pytest.approx(0.01)

    def test_step_decay_validates(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, [20, 10])

    def test_warmup_ramps_linearly(self):
        s = WarmupThenDecay(ConstantLR(1.0), warmup=10, divisor=10.0)
        assert s.lr(0) == pytest.approx(0.1)
        assert s.lr(5) == pytest.approx(0.55)
        assert s.lr(10) == pytest.approx(1.0)
        assert s.lr(100) == pytest.approx(1.0)

    def test_polynomial(self):
        s = PolynomialDecay(2.0, total=100, power=1.0)
        assert s.lr(0) == 2.0
        assert s.lr(50) == pytest.approx(1.0)
        assert s.lr(100) == 0.0
        assert s.lr(200) == 0.0

    def test_trainer_applies_schedule(self, rng):
        from repro.gxm.etg import ExecutionTaskGraph
        from repro.gxm.topology import TopologySpec
        from repro.gxm.trainer import Trainer

        topo = TopologySpec("t")
        d = topo.data("data")
        c = topo.conv("c1", d, 16, 3)
        g = topo.global_pool("gap", c)
        f = topo.fc("fc", g, 4)
        topo.loss("loss", f)
        etg = ExecutionTaskGraph(topo, (4, 16, 6, 6), seed=0)
        tr = Trainer(etg, lr=999.0, lr_schedule=StepDecay(1.0, [2], 0.1))
        x = rng.standard_normal((4, 16, 6, 6)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        tr.train_step(x, y)
        assert tr.opt.lr == 1.0
        tr.train_step(x, y)
        tr.train_step(x, y)
        assert tr.opt.lr == pytest.approx(0.1)


class TestRooflineReport:
    def test_table_renders_all_layers(self):
        text = roofline_table(SKX)
        assert text.count("\n") >= 22
        assert "bound" in text and "compute" in text

    def test_shares_sane(self):
        from repro.models.resnet50 import resnet50_layer
        from repro.perf.model import ConvPerfModel

        perf = ConvPerfModel(KNM).estimate_forward(resnet50_layer(4, 70))
        shares = layer_breakdown(perf)
        assert max(shares.values()) <= 1.0 + 1e-9
        assert shares["compute"] > 0.5  # 3x3 layer is compute-dominated
