"""make_engine factory, ConvEngine protocol, constructor deprecation shims."""

import warnings

import numpy as np
import pytest

from repro import ConvEngine, make_engine
from repro.arch.machine import KNM, SKX
from repro.conv.backward import DirectConvBackward
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.upd import DirectConvUpd
from repro.jit.kernel_cache import KernelCache
from repro.quant.qconv_engine import QuantConvForward
from repro.types import DType, Pass, ReproError, UnsupportedError
from tests.conftest import TINY, rand_conv_tensors

P = ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1)
P16 = ConvParams(N=1, C=16, K=16, H=6, W=6, R=3, S=3, stride=1)


class TestDispatch:
    @pytest.mark.parametrize(
        "pass_, cls",
        [
            (Pass.FWD, DirectConvForward),
            (Pass.BWD, DirectConvBackward),
            (Pass.UPD, DirectConvUpd),
            ("fwd", DirectConvForward),
            ("F", DirectConvForward),
            ("forward", DirectConvForward),
            ("bwd", DirectConvBackward),
            ("B", DirectConvBackward),
            ("data", DirectConvBackward),
            ("upd", DirectConvUpd),
            ("U", DirectConvUpd),
            ("wu", DirectConvUpd),
        ],
    )
    def test_pass_spellings(self, pass_, cls):
        # SKX rather than TINY: the update-pass strategy heuristic needs
        # a machine with a memory-bandwidth figure
        eng = make_engine(pass_, P16, machine=SKX)
        assert type(eng) is cls
        assert isinstance(eng, ConvEngine)

    def test_quant_by_name_and_by_dtype(self):
        assert type(make_engine("quant", P16, machine=KNM)) is QuantConvForward
        eng = make_engine(Pass.FWD, P16, machine=KNM, dtype=DType.QI16F32)
        assert type(eng) is QuantConvForward

    def test_unknown_pass_raises(self):
        with pytest.raises(ReproError, match="unknown pass"):
            make_engine("sideways", P)

    def test_quant_backward_raises(self):
        with pytest.raises(ReproError, match="forward pass only"):
            make_engine("bwd", P16, machine=KNM, dtype=DType.QI16F32)

    def test_strategy_only_for_upd(self):
        with pytest.raises(ReproError, match="update pass"):
            make_engine(Pass.FWD, P, machine=TINY, strategy="flat")

    def test_chain_limit_only_for_quant(self):
        with pytest.raises(ReproError, match="int16"):
            make_engine(Pass.FWD, P, machine=TINY, chain_limit=4)
        eng = make_engine("quant", P16, machine=KNM, chain_limit=4)
        assert eng.chain_limit == 4

    def test_upd_fused_ops_raises(self):
        from repro.conv.fusion import ReLU

        with pytest.raises(UnsupportedError):
            make_engine("upd", P16, machine=SKX, fused_ops=[ReLU()])

    def test_gemm_backward_fused_ops_raises(self):
        from repro.conv.fusion import ReLU

        strided = ConvParams(N=1, C=8, K=8, H=8, W=8, R=3, S=3, stride=2)
        with pytest.raises(UnsupportedError):
            make_engine("bwd", strided, machine=TINY, fused_ops=[ReLU()])


class TestNumericsMatchDirect:
    """The factory must be a pure router: bitwise-identical results."""

    def test_forward(self, rng):
        x, w, _ = rand_conv_tensors(P, rng)
        a = make_engine(Pass.FWD, P, machine=TINY, threads=2)
        b = DirectConvForward(P, TINY, threads=2)
        assert np.array_equal(a.run_nchw(x, w), b.run_nchw(x, w))

    def test_backward(self, rng):
        _, w, dy = rand_conv_tensors(P, rng)
        a = make_engine(Pass.BWD, P, machine=TINY)
        b = DirectConvBackward(P, TINY)
        assert np.array_equal(a.run_nchw(dy, w), b.run_nchw(dy, w))

    def test_upd(self, rng):
        x, _, dy = rand_conv_tensors(P16, rng)
        a = make_engine(Pass.UPD, P16, machine=SKX)
        b = DirectConvUpd(P16, SKX)
        assert np.array_equal(a.run_nchw(x, dy), b.run_nchw(x, dy))

    def test_quant(self, rng):
        x, w, _ = rand_conv_tensors(P16, rng, scale=0.3)
        a = make_engine("quant", P16, machine=KNM)
        b = QuantConvForward(P16, KNM)
        assert np.array_equal(a.run_nchw(x, w), b.run_nchw(x, w))

    def test_shared_kernel_cache_is_used(self):
        cache = KernelCache()
        make_engine(Pass.FWD, P, machine=TINY, kernel_cache=cache)
        assert len(cache) > 0


class TestDeprecationShims:
    """Old positional call shapes still work, with a DeprecationWarning."""

    def test_forward_legacy_positional_dtype(self, rng):
        x, w, _ = rand_conv_tensors(P, rng)
        with pytest.warns(DeprecationWarning, match="keyword"):
            old = DirectConvForward(P, TINY, DType.F32, (), 2)
        assert old.dtype is DType.F32 and old.threads == 2
        new = DirectConvForward(P, TINY, dtype=DType.F32, threads=2)
        assert np.array_equal(old.run_nchw(x, w), new.run_nchw(x, w))

    def test_backward_legacy_positional(self, rng):
        _, w, dy = rand_conv_tensors(P, rng)
        with pytest.warns(DeprecationWarning):
            old = DirectConvBackward(P, TINY, DType.F32, 2)
        assert old.threads == 2
        new = DirectConvBackward(P, TINY, dtype=DType.F32, threads=2)
        assert np.array_equal(old.run_nchw(dy, w), new.run_nchw(dy, w))

    def test_upd_legacy_positional(self, rng):
        x, _, dy = rand_conv_tensors(P16, rng)
        with pytest.warns(DeprecationWarning):
            old = DirectConvUpd(P16, SKX, DType.F32, 2)
        new = DirectConvUpd(P16, SKX, dtype=DType.F32, threads=2)
        assert np.array_equal(old.run_nchw(x, dy), new.run_nchw(x, dy))

    def test_quant_legacy_positional(self):
        with pytest.warns(DeprecationWarning):
            old = QuantConvForward(P16, KNM, (), 2)
        assert old.threads == 2

    def test_keyword_calls_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DirectConvForward(P, TINY, dtype=DType.F32, threads=2)
            DirectConvBackward(P, TINY, threads=2)
            DirectConvUpd(P16, SKX, threads=2)
            QuantConvForward(P16, KNM, threads=2)
            make_engine(Pass.FWD, P, machine=TINY)

    def test_too_many_positionals_is_a_typeerror(self):
        with pytest.raises(TypeError):
            DirectConvBackward(P, TINY, DType.F32, 1, None, "extra")


class TestProtocol:
    def test_protocol_attributes(self):
        eng = make_engine(Pass.FWD, P, machine=TINY, threads=3)
        assert eng.params is P
        assert eng.machine is TINY
        assert eng.dtype is DType.F32
        assert eng.threads == 3

    def test_non_engine_fails_isinstance(self):
        class NotAnEngine:
            pass

        assert not isinstance(NotAnEngine(), ConvEngine)
