"""repro.serve.fleet: multi-process replicas, router, shared memory.

The fleet's load-bearing guarantees, each tested here:

* **bitwise identity** -- whatever replica process serves a request,
  whatever crash/reroute happened on the way, the probability vector
  equals unbatched ``InferenceSession.predict`` for the same image.
* **zero-copy hot path** -- ``serve.router.bytes_copied`` stays 0 while
  the shm ring has slots; exhaustion falls back to pickling (counted).
* **crash containment** -- SIGKILL of a replica holding slots neither
  leaks a slot nor lets a stale write answer a different request.
* **fleet lifecycle** -- rolling drain/resume, canary-first rolling
  reload, aggregated health over HTTP.
"""

import json
import os
import signal
import threading
import time
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.gxm.checkpoint import load_checkpoint, save_checkpoint
from repro.gxm.inference import InferenceSession
from repro.obs.metrics import get_metrics, merge_snapshots
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.serve import (
    CanaryError,
    ClientConfig,
    InferenceFleet,
    InferenceServer,
    RequestShed,
    Router,
    ServeClient,
    ServeConfig,
    ServerClosed,
    ShmArrayStore,
    SlotCorruption,
    TensorShm,
    run_closed_loop,
    serve_http,
)
from repro.serve.shm import ShmLease
from repro.types import ReproError, ShapeError

SHAPE = (16, 8, 8)

pytestmark = pytest.mark.timeout(120)


def tiny_config(**kw):
    kw.setdefault("engine", "fast")
    kw.setdefault("buckets", (1, 2, 4))
    kw.setdefault("batch_window_ms", 1.0)
    kw.setdefault("workers", 1)
    return ServeConfig(**kw)


def images(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, *SHAPE)).astype(np.float32)


def direct_reference(cfg, xs):
    etg = cfg.build_etg(1)
    with InferenceSession(etg) as sess:
        return [sess.predict(x[None])[0].copy() for x in xs]


@pytest.fixture
def clean_metrics():
    get_metrics().clear()
    yield get_metrics()
    get_metrics().clear()


def wait_until(pred, timeout_s=20.0, period_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(period_s)
    return pred()


# ---------------------------------------------------------------------------
class TestTensorShm:
    def test_acquire_release_ring(self):
        shm = TensorShm(2, SHAPE, (8,))
        try:
            a = shm.acquire()
            b = shm.acquire()
            assert {a.slot, b.slot} == {0, 1}
            assert shm.acquire() is None  # exhausted -> fallback signal
            assert shm.in_use == 2
            shm.release(a)
            c = shm.acquire()
            assert c.slot == a.slot
            assert c.generation == a.generation + 1  # bumped on release
            shm.release(b)
            shm.release(c)
            assert shm.in_use == 0
        finally:
            shm.close()

    def test_payload_round_trip(self):
        shm = TensorShm(1, SHAPE, (8,))
        try:
            lease = shm.acquire()
            x = images(1, seed=3)[0]
            shm.request_view(lease.slot)[:] = x
            assert (shm.request_view(lease.slot) == x).all()
            probs = np.linspace(0, 1, 8, dtype=np.float32)
            shm.response_view(lease.slot)[:] = probs
            assert (shm.response_view(lease.slot) == probs).all()
            shm.check(lease, lease.generation)  # all three gens agree
            shm.release(lease)
        finally:
            shm.close()

    def test_check_rejects_header_scribble(self):
        shm = TensorShm(1, SHAPE, (8,))
        try:
            lease = shm.acquire()
            shm.write_header(lease.slot, lease.generation + 99)
            with pytest.raises(SlotCorruption, match="header"):
                shm.check(lease, lease.generation)
        finally:
            shm.close()

    def test_check_rejects_stale_message_generation(self):
        shm = TensorShm(1, SHAPE, (8,))
        try:
            lease = shm.acquire()
            shm.reclaim(lease)  # crash path won
            fresh = shm.acquire()
            assert fresh.generation == lease.generation + 1
            # a late reply carrying the dead lease's generation must not
            # be trusted against the fresh lease
            with pytest.raises(SlotCorruption):
                shm.check(fresh, lease.generation)
        finally:
            shm.close()

    def test_release_after_reclaim_is_idempotent(self):
        shm = TensorShm(1, SHAPE, (8,))
        try:
            lease = shm.acquire()
            shm.reclaim(lease)
            shm.release(lease)  # late release of a reclaimed lease
            assert shm.in_use == 0  # not double-freed
            assert shm.acquire() is not None
            assert shm.acquire() is None
        finally:
            shm.close()

    def test_array_store_round_trip(self):
        arrays = {
            "a/k": np.arange(7, dtype=np.int64),
            "b/w": np.linspace(0, 1, 5, dtype=np.float32),
        }
        store = ShmArrayStore.from_arrays(arrays)
        try:
            assert store.names() == ["a/k", "b/w"]
            for name, arr in arrays.items():
                view = store.get(name)
                assert (view == arr).all()
                assert view.dtype == arr.dtype
                assert not view.flags.writeable
        finally:
            store.close()


# ---------------------------------------------------------------------------
class _StubHandle:
    def __init__(self, hid, outstanding=0, wait=0.0, degraded=(),
                 available=True):
        self.id = hid
        self.outstanding_count = outstanding
        self.est_wait_ms = wait
        self.degraded_buckets = degraded
        self.available = available


class TestRouter:
    def test_prefers_lower_load(self, clean_metrics):
        handles = [_StubHandle(0, outstanding=10), _StubHandle(1)]
        router = Router(handles, clean_metrics)
        assert all(router.pick().id == 1 for _ in range(8))
        assert clean_metrics.value("serve.router.dispatched") == 8
        assert clean_metrics.value("serve.router.dispatched.r1") == 8

    def test_degraded_bucket_penalty(self, clean_metrics):
        handles = [
            _StubHandle(0, degraded=(2, 4)),
            _StubHandle(1, outstanding=3),
        ]
        router = Router(handles, clean_metrics)
        # 2 degraded buckets (penalty 4) outweigh 3 outstanding
        assert router.pick().id == 1

    def test_exclude_is_soft(self, clean_metrics):
        handles = [_StubHandle(0), _StubHandle(1, available=False)]
        router = Router(handles, clean_metrics)
        assert router.pick(exclude=0).id == 0  # lone survivor serves
        handles[1].available = True
        assert router.pick(exclude=0).id == 1

    def test_sheds_when_empty(self, clean_metrics):
        router = Router([_StubHandle(0, available=False)], clean_metrics)
        with pytest.raises(RequestShed):
            router.pick()
        assert clean_metrics.value("serve.router.no_replica") == 1

    def test_copy_counter(self, clean_metrics):
        router = Router([], clean_metrics)
        router.note_copy(4096)
        assert router.stats()["serve.router.bytes_copied"] == 4096
        assert router.stats()["serve.router.shm_fallback"] == 1


# ---------------------------------------------------------------------------
class TestFleetServing:
    def test_bitwise_identity_and_zero_copy(self):
        cfg = tiny_config()
        xs = images(24, seed=1)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(cfg, replicas=2) as fleet:
            got = [fleet.predict(x) for x in xs]
            stats = fleet._router.stats()
            shm = fleet._shm.stats()
        for r, g in zip(ref, got):
            assert (r == g).all()
        # hot path: never pickled an activation, never leaked a slot
        assert stats.get("serve.router.bytes_copied", 0) == 0
        assert stats["serve.router.dispatched"] == 24
        assert shm["in_use"] == 0

    def test_both_replicas_serve(self):
        cfg = tiny_config()
        xs = images(32, seed=2)
        with InferenceFleet(cfg, replicas=2) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            for r in reqs:
                r.result(30.0)
            stats = fleet._router.stats()
        assert stats["serve.router.dispatched.r0"] > 0
        assert stats["serve.router.dispatched.r1"] > 0

    def test_ring_exhaustion_falls_back_to_pickle(self):
        cfg = tiny_config()
        xs = images(12, seed=3)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(cfg, replicas=2, shm_slots=1) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            got = [r.result(30.0) for r in reqs]
            stats = fleet._router.stats()
        for r, g in zip(ref, got):
            assert (r == g).all()  # fallback answers are still bitwise
        assert stats.get("serve.router.shm_fallback", 0) > 0
        assert stats.get("serve.router.bytes_copied", 0) > 0

    def test_shape_and_state_validation(self):
        cfg = tiny_config()
        fleet = InferenceFleet(cfg, replicas=1)
        with pytest.raises(ServerClosed):
            fleet.submit(images(1)[0])
        with fleet:
            with pytest.raises(ShapeError):
                fleet.submit(np.zeros((3, 8, 8), dtype=np.float32))
        with pytest.raises(ServerClosed):
            fleet.submit(images(1)[0])

    def test_rejects_bad_replica_count(self):
        with pytest.raises(ReproError, match="replica"):
            InferenceFleet(tiny_config(), replicas=0)

    def test_deadline_propagates_to_replica(self):
        from repro.serve import DeadlineExceeded

        cfg = tiny_config()
        with InferenceFleet(cfg, replicas=1) as fleet:
            req = fleet.submit(
                images(1)[0], deadline=time.perf_counter() - 0.01
            )
            with pytest.raises(DeadlineExceeded):
                req.result(10.0)

    def test_fleet_metrics_merge(self):
        cfg = tiny_config()
        with InferenceFleet(cfg, replicas=2) as fleet:
            for x in images(8, seed=4):
                fleet.predict(x)
            stats = fleet.stats()
        merged = stats["merged"]
        # requests were served across two registries; the merged view
        # must account for all of them
        assert merged["counters"].get("serve.responses", 0) == 8
        assert len(stats["per_replica"]) == 2
        assert stats["replicas"] == 2

    def test_merge_snapshots_sums_counters(self):
        a = {"counters": {"c": 2}, "gauges": {"g": 1.0},
             "dists": {"d": {"count": 1, "samples": [1.0]}}}
        b = {"counters": {"c": 3}, "gauges": {"g": 2.0},
             "dists": {"d": {"count": 2, "samples": [3.0, 5.0]}}}
        merged = merge_snapshots([a, b])
        assert merged["counters"]["c"] == 5
        assert merged["gauges"]["g"] == 2.0
        assert merged["distributions"]["d"]["count"] == 3


# ---------------------------------------------------------------------------
class TestFleetFailover:
    def test_sigkill_midflight_reroutes_and_respawns(self):
        cfg = tiny_config()
        xs = images(20, seed=5)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(cfg, replicas=2, health_period_ms=10.0) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            os.kill(fleet._handles[0].pid, signal.SIGKILL)
            got = [r.result(30.0) for r in reqs]
            for r, g in zip(ref, got):
                assert (r == g).all()
            assert wait_until(
                lambda: fleet.health()["live_replicas"] == 2
            )
            h = fleet.health()
            assert h["replica_crashes"] >= 1
            assert h["respawns"] >= 1
            # post-respawn answers stay bitwise, slots fully recovered
            got2 = [fleet.predict(x) for x in xs]
            for r, g in zip(ref, got2):
                assert (r == g).all()
            assert fleet._shm.in_use == 0

    def test_crash_fault_site(self):
        # deterministic version of the SIGKILL test: replica 0 os._exits
        # on its first dispatched request
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.replica.predict", kind="crash", rank=0),
        ))
        cfg = tiny_config()
        xs = images(10, seed=6)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(
            cfg, replicas=2, fault_plan=plan, health_period_ms=10.0
        ) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            got = [r.result(30.0) for r in reqs]
            for r, g in zip(ref, got):
                assert (r == g).all()
            assert fleet.metrics.value("serve.fleet.replica_crashes") >= 1
            assert fleet._router.stats().get("serve.router.rerouted", 0) >= 1

    def test_hang_detection_kills_and_respawns(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.replica.predict", kind="hang", rank=0,
                      delay_s=60.0),
        ))
        cfg = tiny_config()
        xs = images(8, seed=7)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(
            cfg, replicas=2, fault_plan=plan,
            health_period_ms=10.0, hang_polls=5,
        ) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            # the hung replica answers nothing; the fleet must SIGKILL
            # it, reroute its outstanding work and respawn it
            got = [r.result(60.0) for r in reqs]
            for r, g in zip(ref, got):
                assert (r == g).all()
            assert wait_until(
                lambda: fleet.metrics.value("serve.fleet.hung_killed") >= 1
            )
            assert wait_until(
                lambda: fleet.health()["live_replicas"] == 2, timeout_s=30.0
            )

    def test_shm_corruption_fails_exactly_one_request(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="fleet.replica.reply", kind="corrupt_message",
                      rank=0),
        ))
        cfg = tiny_config()
        xs = images(16, seed=8)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(cfg, replicas=2, fault_plan=plan) as fleet:
            reqs = [fleet.submit(x) for x in xs]
            failures, good = [], []
            for i, r in enumerate(reqs):
                try:
                    good.append((i, r.result(30.0)))
                except SlotCorruption:
                    failures.append(i)
            # exactly the slot owner failed; every neighbour is bitwise
            assert len(failures) == 1
            for i, g in good:
                assert (ref[i] == g).all()
            assert fleet.metrics.value("serve.fleet.shm_corruption") == 1
            # the corrupted slot was reclaimed, not leaked
            assert fleet._shm.in_use == 0
            # and the ring still serves correctly afterwards
            assert (fleet.predict(xs[0]) == ref[0]).all()


# ---------------------------------------------------------------------------
class TestFleetLifecycle:
    def test_drain_resume_rolls_replicas(self):
        cfg = tiny_config()
        xs = images(6, seed=9)
        with InferenceFleet(cfg, replicas=2) as fleet:
            for x in xs:
                fleet.predict(x)
            report = fleet.drain(timeout_s=10.0)
            assert report["drained_replicas"] == [0, 1]
            assert fleet.health()["status"] == "degraded"
            with pytest.raises(ServerClosed, match="draining"):
                fleet.submit(xs[0])
            report = fleet.resume()
            assert report["resumed_replicas"] == [0, 1]
            assert fleet.health()["status"] == "ok"
            fleet.predict(xs[0])

    def test_rolling_reload_canary_first(self, tmp_path):
        cfg = tiny_config()
        ck = str(tmp_path / "b.npz")
        etg = replace(cfg, seed=99).build_etg(1)
        save_checkpoint(etg, ck)
        x = images(1, seed=10)[0]
        ref_etg = cfg.build_etg(1)
        load_checkpoint(ref_etg, ck)
        with InferenceSession(ref_etg) as sess:
            ref_new = sess.predict(x[None])[0].copy()
        with InferenceFleet(cfg, replicas=2) as fleet:
            ref_old = fleet.predict(x)
            report = fleet.reload_checkpoint(ck)
            assert report["canary_replica"] == 0
            assert report["reloaded_replicas"] == [0, 1]
            got = fleet.predict(x)
            assert (got == ref_new).all()
            assert not (got == ref_old).all()
            assert fleet.metrics.value("serve.fleet.reloads") == 1

    def test_reload_canary_failure_rolls_back(self, tmp_path):
        from repro.gxm.nodes import _LayerNode
        from repro.layers.fc import Linear

        cfg = tiny_config()
        etg = cfg.build_etg(1)
        fc = next(
            n for n in etg.nodes.values()
            if isinstance(n, _LayerNode) and isinstance(n.layer, Linear)
        )
        fc.layer.weight[...] = np.nan
        ck = str(tmp_path / "nan.npz")
        save_checkpoint(etg, ck)
        x = images(1, seed=11)[0]
        with InferenceFleet(cfg, replicas=2) as fleet:
            ref = fleet.predict(x)
            with pytest.raises(CanaryError):
                fleet.reload_checkpoint(ck)
            # the canary rolled back inside its replica; nobody else
            # ever saw the poisoned weights
            assert (fleet.predict(x) == ref).all()
            assert fleet.metrics.value("serve.fleet.reload_rollbacks") == 1
            assert fleet.metrics.value("serve.fleet.reloads") == 0


# ---------------------------------------------------------------------------
class _StubFleet:
    """Minimal routes_replicas target: the primary never resolves, the
    backup resolves instantly -- so a hedge must (a) be sent and (b)
    carry exclude_replica=primary's replica."""

    routes_replicas = True

    def __init__(self):
        from repro.serve.request import InferenceRequest

        self._req_cls = InferenceRequest
        self.excludes = []
        self.submissions = 0

    def submit(self, x, deadline=None, exclude_replica=None):
        req = self._req_cls(x, deadline=deadline)
        self.submissions += 1
        self.excludes.append(exclude_replica)
        if exclude_replica is None:
            req.replica_id = 0  # slow primary parked on replica 0
        else:
            req.replica_id = 1
            req._resolve(np.ones(8, dtype=np.float32))
        return req


class TestHedgingAcrossReplicas:
    def test_hedge_excludes_primary_replica(self):
        fleet = _StubFleet()
        client = ServeClient(fleet, config=ClientConfig(
            timeout_s=5.0, max_retries=0, hedge=True, hedge_min_samples=1,
        ))
        # feed the p95 estimator fast samples so hedging arms
        client._latencies_s.extend([0.001] * 4)
        probs = client.predict(images(1)[0])
        assert (probs == 1.0).all()
        assert fleet.submissions == 2
        assert fleet.excludes == [None, 0]  # backup avoided replica 0
        stats = client.stats()
        assert stats["hedges"] == 1 and stats["hedge_wins"] == 1


# ---------------------------------------------------------------------------
class TestWarmFleetBoot:
    def test_bundle_verified_once_and_shared(self, tmp_path):
        cfg = tiny_config(engine="blocked")
        artifact = str(tmp_path / "streams.npz")
        with InferenceServer(cfg) as server:
            for x in images(3, seed=12):
                server.predict(x)
            server.save_streams_artifact(artifact)
        xs = images(10, seed=13)
        ref = direct_reference(cfg, xs)
        fleet = InferenceFleet(cfg, replicas=2)
        boot = fleet.start(streams_artifact=artifact)
        try:
            assert boot["bundle_verified_once"]
            assert boot["bundle_shared_bytes"] > 0
            # every replica boots warm (no dryrun) and reports its time
            for rid in (0, 1):
                per = boot["per_replica"][rid]
                assert per["warm_buckets"] == [1, 2, 4]
                assert per["cold_buckets"] == []
                assert boot["warm_ms"][rid] > 0
                assert fleet.metrics.gauges()[
                    f"serve.boot.warm_ms.r{rid}"
                ] > 0
            got = [fleet.predict(x) for x in xs]
            for r, g in zip(ref, got):
                assert (r == g).all()
        finally:
            fleet.stop()

    def test_stale_artifact_cold_boots_fleet(self, tmp_path):
        cfg = tiny_config(engine="blocked")
        artifact = str(tmp_path / "streams.npz")
        with InferenceServer(cfg) as server:
            server.predict(images(1)[0])
            server.save_streams_artifact(artifact)
        other = tiny_config(engine="blocked", width=64)
        fleet = InferenceFleet(other, replicas=1)
        boot = fleet.start(streams_artifact=artifact)
        try:
            assert "artifact_error" in boot
            assert not boot["bundle_verified_once"]
            assert fleet.metrics.value("serve.artifact_rejected") == 1
            # cold boot still serves correctly
            x = images(1, seed=14)[0]
            assert (
                fleet.predict(x)
                == direct_reference(other, [x])[0]
            ).all()
        finally:
            fleet.stop()


# ---------------------------------------------------------------------------
class TestFleetFrontEnds:
    def test_serve_client_closed_loop(self):
        cfg = tiny_config()
        xs = images(12, seed=15)
        ref = direct_reference(cfg, xs)
        with InferenceFleet(cfg, replicas=2) as fleet:
            client = ServeClient(fleet, config=ClientConfig(timeout_s=30.0))
            got = [client.predict(x) for x in xs]
            report = run_closed_loop(fleet, clients=4, requests=16, seed=16)
        for r, g in zip(ref, got):
            assert (r == g).all()
        assert report.replicas == 2
        assert report.router_stats["serve.router.dispatched"] > 0
        assert report.completed == 16

    def test_http_front_end_drives_fleet(self):
        cfg = tiny_config()
        x = images(1, seed=17)[0]
        ref = direct_reference(cfg, [x])[0]
        with InferenceFleet(cfg, replicas=2) as fleet:
            httpd = serve_http(fleet, port=0)
            host, port = httpd.server_address[:2]
            base = f"http://{host}:{port}"
            try:
                body = json.dumps({"input": x.tolist()}).encode()
                req = urllib.request.Request(
                    f"{base}/predict", data=body,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(req) as resp:
                    probs = np.asarray(
                        json.loads(resp.read())["probs"], dtype=np.float32
                    )
                assert (probs == ref).all()
                with urllib.request.urlopen(f"{base}/healthz") as resp:
                    payload = json.loads(resp.read())
                assert payload["status"] == "ok"
                assert payload["live_replicas"] == 2
                assert payload["router"]["serve.router.dispatched"] >= 1
            finally:
                httpd.shutdown()
