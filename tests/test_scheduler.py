"""Cycle-level scheduler, and its agreement with the analytic timing model.

Two independent mechanisms pricing the same µop streams must agree -- this
is the reproduction's internal consistency check for kernel-level timing
(DESIGN.md section 6).
"""

import pytest

from repro.arch.isa import KernelProgram, Op, Uop
from repro.arch.machine import KNM, SKX
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.scheduler import CycleSimulator, ScheduleResult
from repro.jit.timing import time_kernel
from repro.types import DType

BASE = dict(
    vlen=16, rb_p=1, rb_q=28, R=3, S=3, stride=1,
    i_strides=(100000, 1000, 16), w_strides=(100000, 800, 256, 16),
    o_strides=(900, 16),
)


def build(machine, **over):
    return generate_conv_kernel(ConvKernelDesc(**{**BASE, **over}))


class TestAgainstAnalyticModel:
    CASES = [
        ("skx_fusedmem", SKX, dict(fused_memop=True)),
        ("skx_bcast", SKX, dict()),
        ("skx_rb1", SKX, dict(rb_q=1)),
        ("skx_rb8", SKX, dict(rb_q=8)),
        ("knm_4fma", KNM, dict(use_4fma=True)),
        ("knm_q16", KNM, dict(rb_q=13, dtype=DType.QI16F32,
                              use_4vnni=True, acc_chain_limit=8)),
    ]

    @pytest.mark.parametrize("name,machine,over", CASES,
                             ids=[c[0] for c in CASES])
    def test_within_band(self, name, machine, over):
        prog = build(machine, **over)
        analytic = time_kernel(prog, machine, call_overhead=0.0).cycles
        sim = CycleSimulator(machine).simulate(prog).cycles
        assert 0.75 <= sim / analytic <= 1.35, (name, sim, analytic)

    def test_relative_ordering_preserved(self):
        """The simulator must rank kernel qualities like the model does:
        register blocking >> none; 4FMA >> broadcast on KNM."""
        sim = CycleSimulator(SKX)
        bad = sim.simulate(build(SKX, rb_q=1))
        good = sim.simulate(build(SKX, rb_q=28, fused_memop=True))
        # per-flop cycles
        assert (bad.cycles / build(SKX, rb_q=1).flops) > 3 * (
            good.cycles / build(SKX, rb_q=28).flops
        )
        ksim = CycleSimulator(KNM)
        four = ksim.simulate(build(KNM, use_4fma=True))
        bcast = ksim.simulate(build(KNM))
        assert four.cycles < bcast.cycles


class TestMechanics:
    def test_dependency_chain_serializes(self):
        """N dependent FMAs into one register take ~N*latency cycles."""
        uops = [Uop(Op.VZERO, dst=0), Uop(Op.VZERO, dst=1),
                Uop(Op.VZERO, dst=2)]
        uops += [Uop(Op.VFMA, dst=0, src1=1, src2=2) for _ in range(50)]
        prog = KernelProgram(name="chain", vlen=16, uops=uops)
        r = CycleSimulator(SKX).simulate(prog)
        assert r.cycles >= 50 * SKX.fma_latency * 0.95
        assert r.stall_dep > 40

    def test_independent_chains_pipeline(self):
        """The same FMA count over 8 chains runs ~8x faster (II-B)."""
        uops = [Uop(Op.VZERO, dst=i) for i in range(10)]
        for rep in range(50):
            for acc in range(8):
                uops.append(Uop(Op.VFMA, dst=acc, src1=8, src2=9))
        many = CycleSimulator(SKX).simulate(
            KernelProgram(name="m", vlen=16, uops=uops)
        )
        single = [Uop(Op.VZERO, dst=i) for i in range(10)]
        single += [Uop(Op.VFMA, dst=0, src1=8, src2=9) for _ in range(400)]
        one = CycleSimulator(SKX).simulate(
            KernelProgram(name="s", vlen=16, uops=single)
        )
        assert one.cycles > 5 * many.cycles

    def test_port_contention(self):
        """More store ops than store pipes -> port stalls."""
        uops = [Uop(Op.VZERO, dst=0)]
        uops += [Uop(Op.VSTORE, src1=0, tensor="O", offset=16 * i)
                 for i in range(64)]
        r = CycleSimulator(SKX).simulate(
            KernelProgram(name="st", vlen=16, uops=uops)
        )
        assert r.cycles >= 64 / SKX.store_ports * 0.9
        assert r.stall_port > 0

    def test_zero_idiom_is_free(self):
        uops = [Uop(Op.VZERO, dst=i % 32) for i in range(500)]
        r = CycleSimulator(SKX).simulate(
            KernelProgram(name="z", vlen=16, uops=uops)
        )
        assert r.cycles < 5

    def test_utilization_bounded(self):
        prog = build(SKX, fused_memop=True)
        r = CycleSimulator(SKX).simulate(prog)
        for port in ("fma", "load", "store"):
            assert 0.0 <= r.utilization(port) <= 1.0 + 0.2  # occupancy>1 ops

    def test_issue_width_bounds_front_end(self):
        """Even fully independent single-port-class work cannot beat the
        front end: 4-wide issue -> >= n/4 cycles."""
        uops = []
        for i in range(400):
            uops.append(Uop(Op.VLOAD, dst=i % 8, tensor="I", offset=16 * i))
        r = CycleSimulator(SKX).simulate(
            KernelProgram(name="ld", vlen=16, uops=uops)
        )
        assert r.cycles >= 400 / SKX.load_ports * 0.9  # 2 load pipes bind
