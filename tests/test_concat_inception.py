"""Concat layer, hardware prefetchers, and the full Inception-v3 topology."""

import numpy as np
import pytest

from repro.arch.machine import MachineConfig
from repro.cachesim.cache import Cache
from repro.cachesim.hierarchy import CacheHierarchy
from repro.cachesim.prefetcher import NextLinePrefetcher, StridePrefetcher
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.graph import compile_etg
from repro.gxm.nodes import _conv_geometry, output_shape
from repro.gxm.trainer import Trainer
from repro.layers.concat import Concat
from repro.models.inception_v3 import (
    INCEPTION_V3_CONVS,
    inception_mini_topology,
    inception_v3_topology,
)
from repro.types import ShapeError


class TestConcat:
    def test_forward(self, rng):
        a = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        b = rng.standard_normal((2, 5, 4, 4)).astype(np.float32)
        c = Concat(2)
        y = c.forward(a, b)
        assert y.shape == (2, 8, 4, 4)
        assert np.array_equal(y[:, :3], a)
        assert np.array_equal(y[:, 3:], b)

    def test_backward_splits(self, rng):
        a = rng.standard_normal((1, 2, 3, 3)).astype(np.float32)
        b = rng.standard_normal((1, 4, 3, 3)).astype(np.float32)
        c = Concat(2)
        y = c.forward(a, b)
        da, db = c.backward(y)
        assert np.array_equal(da, a)
        assert np.array_equal(db, b)

    def test_mismatched_spatial(self, rng):
        with pytest.raises(ShapeError):
            Concat(2).forward(
                np.zeros((1, 2, 4, 4), dtype=np.float32),
                np.zeros((1, 2, 5, 4), dtype=np.float32),
            )

    def test_wrong_arity(self):
        with pytest.raises(ShapeError):
            Concat(3).forward(np.zeros((1, 1, 2, 2), dtype=np.float32))


class TestHardwarePrefetchers:
    def test_nextline_fills_adjacent(self):
        c = Cache(4096, assoc=4)
        pf = NextLinePrefetcher(c)
        c.access(10)
        pf.on_access(10, was_hit=False)
        assert c.lookup(11)

    def test_stride_detector_locks_on(self):
        c = Cache(1 << 16, assoc=8)
        pf = StridePrefetcher(c, degree=2)
        for i in range(5):
            pf.on_access(i * 7, was_hit=False)
        # stride 7 detected: the last access prefetched +7 and +14 ahead
        assert c.lookup(4 * 7 + 7)
        assert c.lookup(4 * 7 + 14)

    def test_streams_tracked_per_region(self):
        c = Cache(1 << 16, assoc=8)
        pf = StridePrefetcher(c, degree=1, region_bits=20)
        # interleave two streams in different regions; both lock on
        for i in range(5):
            pf.on_access(i * 3, False)
            pf.on_access((1 << 20) + i * 5, False)
        assert c.lookup(4 * 3 + 3)
        assert c.lookup((1 << 20) + 4 * 5 + 5)

    def test_hierarchy_integration_reduces_l2_misses(self):
        m = MachineConfig(name="T", cores=1, freq_hz=1e9,
                          l1_bytes=1024, l2_bytes=1 << 16, l1_assoc=2)
        base = CacheHierarchy(m)
        hw = CacheHierarchy(m, hw_prefetch="stride")
        for h in (base, hw):
            for i in range(0, 256 * 16, 16):  # sequential stream
                h.touch("I", i, 16, "load")
        assert hw.l2.stats.misses < base.l2.stats.misses

    def test_unknown_mode(self):
        m = MachineConfig(name="T", cores=1, freq_hz=1e9)
        with pytest.raises(ValueError):
            CacheHierarchy(m, hw_prefetch="oracle")


class TestInceptionTopology:
    def test_compiles_and_shapes(self):
        topo = inception_v3_topology()
        enl, tasks = compile_etg(topo)
        shapes = {}
        for layer in enl.layers:
            ins = (
                [(2, 3, 299, 299)]
                if layer.type == "Data"
                else [shapes[b] for b in layer.bottoms]
            )
            out = output_shape(layer, ins)
            for t in layer.tops:
                shapes[t] = out
        assert shapes["gap"] == (2, 2048)
        assert shapes["mixed3_out"][1:] == (768, 17, 17)
        assert shapes["mixed8_out"][1:] == (1280, 8, 8)

    def test_conv_list_matches_topology(self):
        """INCEPTION_V3_CONVS is derived from the graph; keep them in sync."""
        topo = inception_v3_topology()
        enl, _ = compile_etg(topo)
        shapes = {}
        got: dict[tuple, int] = {}
        for layer in enl.layers:
            ins = (
                [(2, 3, 299, 299)]
                if layer.type == "Data"
                else [shapes[b] for b in layer.bottoms]
            )
            out = output_shape(layer, ins)
            for t in layer.tops:
                shapes[t] = out
            if layer.type == "Convolution":
                _, c, h, w = ins[0]
                r, s, ph, pw = _conv_geometry(layer)
                key = (c, layer.attrs["num_output"], h, w, r, s,
                       layer.attrs.get("stride", 1), ph, pw)
                got[key] = got.get(key, 0) + 1
        want = {}
        for *spec, count in INCEPTION_V3_CONVS:
            want[tuple(spec)] = want.get(tuple(spec), 0) + count
        assert got == want
        assert sum(got.values()) == 94

    def test_mini_inception_trains(self):
        topo = inception_mini_topology(num_classes=4)
        etg = ExecutionTaskGraph(topo, (16, 16, 12, 12), seed=2)
        ds = SyntheticImageDataset(n=96, num_classes=4, shape=(16, 12, 12),
                                   seed=8)
        tr = Trainer(etg, lr=0.05)
        tr.fit(ds, batch_size=16, epochs=3)
        losses = tr.metrics.losses
        assert losses[-1] < 0.8 * losses[0]

    def test_asymmetric_conv_node(self, rng):
        """1x7 / 7x1 convolutions run correctly through GxM nodes."""
        from repro.gxm.topology import TopologySpec

        topo = TopologySpec("asym")
        d = topo.data("data")
        t = topo.conv("c17", d, 16, (1, 7))
        t = topo.conv("c71", t, 16, (7, 1))
        t = topo.global_pool("gap", t)
        t = topo.fc("fc", t, 4)
        topo.loss("loss", t)
        etg = ExecutionTaskGraph(topo, (2, 16, 9, 9), seed=0)
        x = rng.standard_normal((2, 16, 9, 9)).astype(np.float32)
        y = rng.integers(0, 4, 2)
        assert np.isfinite(etg.train_step(x, y))
        assert etg.shapes["c17"] == (2, 16, 9, 9)  # same-size padding
