"""DirectConvBackward: duality scenarios + Algorithm-7 fallback."""

import numpy as np
import pytest

from repro.arch.machine import KNM, SKX
from repro.conv.backward import DirectConvBackward
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_backward_data
from repro.types import UnsupportedError
from tests.conftest import assert_close, rand_conv_tensors


class TestModeSelection:
    def test_stride1_uses_duality(self):
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=3, S=3, stride=1)
        assert DirectConvBackward(p).mode == "duality"

    def test_1x1_strided_uses_1x1_duality(self):
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=2)
        assert DirectConvBackward(p).mode == "duality_1x1"

    def test_1x1_stride1_uses_plain_duality(self):
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=1)
        assert DirectConvBackward(p).mode == "duality"

    def test_general_uses_gemm_fallback(self):
        p = ConvParams(N=1, C=16, K=16, H=9, W=9, R=3, S=3, stride=2)
        assert DirectConvBackward(p).mode == "gemm"

    def test_duality_reuses_forward_machinery(self):
        """The whole point of section II-I: one code generator serves both
        passes."""
        p = ConvParams(N=1, C=16, K=32, H=8, W=8, R=3, S=3, stride=1)
        bwd = DirectConvBackward(p)
        assert bwd.engine is not None
        fp = bwd.engine.params
        assert (fp.C, fp.K) == (p.K, p.C)  # feature maps swapped
        assert fp.pad_h == p.R - 1 - p.pad_h  # full padding


CASES = [
    ConvParams(N=2, C=16, K=32, H=8, W=8, R=3, S=3, stride=1),
    ConvParams(N=1, C=32, K=16, H=7, W=9, R=5, S=3, stride=1),
    ConvParams(N=2, C=16, K=16, H=8, W=8, R=1, S=1, stride=1),
    ConvParams(N=1, C=16, K=32, H=9, W=9, R=1, S=1, stride=2),
    ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=4),
    ConvParams(N=1, C=16, K=16, H=9, W=9, R=3, S=3, stride=2),
    ConvParams(N=2, C=16, K=16, H=14, W=14, R=7, S=7, stride=2),
]


class TestCorrectness:
    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    @pytest.mark.parametrize("machine", [SKX, KNM], ids=lambda m: m.name)
    def test_matches_reference(self, p, machine, rng):
        _, w, dy = rand_conv_tensors(p, rng)
        bwd = DirectConvBackward(p, machine=machine, threads=2)
        assert_close(bwd.run_nchw(dy, w), conv2d_backward_data(dy, w, p))

    def test_1x1_stride2_zeros_off_grid(self, rng):
        """Scenario 2 of II-I: dI is nonzero only on the stride grid."""
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=2)
        _, w, dy = rand_conv_tensors(p, rng)
        di = DirectConvBackward(p).run_nchw(dy, w)
        assert np.all(di[:, :, 1::2, :] == 0)
        assert np.all(di[:, :, :, 1::2] == 0)
        assert np.any(di[:, :, ::2, ::2] != 0)

    def test_padded_1x1_unsupported(self):
        p = ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=2,
                       pad_h=1, pad_w=1)
        with pytest.raises(UnsupportedError):
            DirectConvBackward(p)

    def test_gemm_fallback_has_gemm_program(self):
        p = ConvParams(N=1, C=16, K=16, H=9, W=9, R=3, S=3, stride=2)
        bwd = DirectConvBackward(p)
        assert bwd.gemm_program.flops == 2 * 16 * 16 * p.Q
