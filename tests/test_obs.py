"""repro.obs: tracer spans, metrics registry, exporters, instrumentation."""

import json
import threading

import pytest

from repro import obs
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.jit.kernel_cache import KernelCache
from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    dump_chrome_trace,
    flat_report,
    get_metrics,
    get_tracer,
)
from tests.conftest import TINY, rand_conv_tensors


@pytest.fixture
def traced():
    """Enable the global tracer for one test, restoring a clean slate."""
    tracer = obs.enable()
    tracer.clear()
    get_metrics().clear()
    yield tracer
    obs.disable()
    tracer.clear()
    get_metrics().clear()


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("x") is NULL_SPAN
        assert t.span("y", a=1) is NULL_SPAN
        with t.span("x"):
            pass
        assert t.events == []

    def test_enabled_span_records(self):
        t = Tracer(enabled=True)
        with t.span("jit.codegen", kernel="k1"):
            pass
        (r,) = t.events
        assert r.name == "jit.codegen"
        assert r.dur_us >= 0
        assert r.args == {"kernel": "k1"}
        assert r.depth == 0

    def test_nesting_depth(self):
        t = Tracer(enabled=True)
        with t.span("outer"):
            with t.span("inner"):
                pass
        by_name = {r.name: r for r in t.events}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # depth resets once the stack unwinds
        with t.span("again"):
            pass
        assert t.spans("again")[0].depth == 0

    def test_instant_marker(self):
        t = Tracer(enabled=True)
        t.instant("mark", step=3)
        (r,) = t.events
        assert r.dur_us == 0.0 and r.args == {"step": 3}

    def test_singleton_identity_is_stable(self):
        t = get_tracer()
        assert obs.enable() is t
        assert obs.disable() is t
        assert get_tracer() is t

    def test_ingest_rewrites_pid(self):
        src = Tracer(enabled=True)
        with src.span("etg.task"):
            pass
        dst = Tracer(enabled=True)
        dst.ingest(src.export_events(), pid=4242)
        assert dst.events[0].pid == 4242

    def test_export_events_clear(self):
        t = Tracer(enabled=True)
        with t.span("a"):
            pass
        out = t.export_events(clear=True)
        assert len(out) == 1 and t.events == []

    def test_threaded_recording(self):
        t = Tracer(enabled=True)

        def work():
            for _ in range(50):
                with t.span("thread.work"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t.spans("thread.work")) == 200


class TestMetrics:
    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.inc("calls")
        m.inc("calls", 2)
        m.set_gauge("imgs_per_s", 10.5)
        assert m.value("calls") == 3
        assert m.value("imgs_per_s") == 10.5
        assert m.value("absent", default=-1) == -1

    def test_snapshot_and_merge(self):
        worker = MetricsRegistry()
        worker.inc("n", 5)
        worker.set_gauge("g", 1.0)
        snap = worker.snapshot(clear=True)
        assert worker.counters() == {}
        root = MetricsRegistry()
        root.inc("n", 2)
        root.merge(snap)
        root.merge({"counters": {"n": 1}, "gauges": {"g": 9.0}})
        assert root.value("n") == 8  # counters add
        assert root.value("g") == 9.0  # gauges last-write-wins

    def test_concurrent_inc(self):
        m = MetricsRegistry()

        def work():
            for _ in range(500):
                m.inc("x")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert m.value("x") == 2000


class TestExport:
    def _tracer(self):
        t = Tracer(enabled=True)
        with t.span("conv.dryrun", layer="L", obj=object()):
            with t.span("jit.codegen"):
                pass
        with t.span("jit.codegen"):
            pass
        return t

    def test_chrome_trace_shape(self):
        m = MetricsRegistry()
        m.inc("jit.kernels_generated", 2)
        doc = chrome_trace(self._tracer(), m)
        assert {e["ph"] for e in doc["traceEvents"]} == {"X"}
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"]}
        assert cats == {"conv.dryrun": "conv", "jit.codegen": "jit"}
        assert doc["otherData"]["counters"]["jit.kernels_generated"] == 2
        # non-primitive span args are stringified -> always serializable
        json.dumps(doc)

    def test_dump_chrome_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = dump_chrome_trace(path, self._tracer(), MetricsRegistry())
        doc = json.loads(path.read_text())
        assert n == len(doc["traceEvents"]) == 3

    def test_flat_report_aggregates(self):
        rep = flat_report(self._tracer(), MetricsRegistry())
        agg = rep["spans"]["jit.codegen"]
        assert agg["count"] == 2
        assert agg["mean_us"] == pytest.approx(agg["total_us"] / 2)
        assert agg["max_us"] <= agg["total_us"]


class TestEngineInstrumentation:
    P = ConvParams(N=1, C=8, K=8, H=6, W=6, R=3, S=3, stride=1)

    def test_spans_and_counters_from_forward(self, traced, rng):
        x, w, _ = rand_conv_tensors(self.P, rng)
        eng = DirectConvForward(self.P, TINY, kernel_cache=KernelCache())
        eng.run_nchw(x, w)
        names = traced.span_names()
        assert {"conv.dryrun", "jit.codegen", "conv.replay",
                "stream.replay"} <= names
        m = get_metrics()
        assert m.value("conv.engines_built") == 1
        assert m.value("conv.fwd_calls") == 1
        assert m.value("jit.kernels_generated") >= 1
        assert m.value("stream.conv_calls") > 0

    def test_disabled_tracer_records_nothing(self, rng):
        tracer = get_tracer()
        assert not tracer.enabled
        before = len(tracer.events)
        x, w, _ = rand_conv_tensors(self.P, rng)
        eng = DirectConvForward(self.P, TINY, kernel_cache=KernelCache())
        eng.run_nchw(x, w)
        assert len(tracer.events) == before

    def test_codegen_span_carries_kernel_name(self, traced, rng):
        x, w, _ = rand_conv_tensors(self.P, rng)
        eng = DirectConvForward(self.P, TINY, kernel_cache=KernelCache())
        eng.run_nchw(x, w)
        for r in traced.spans("jit.codegen"):
            assert r.args.get("kernel")


class TestKernelCacheSafety:
    def test_concurrent_get_generates_once(self):
        cache = KernelCache()
        calls = []

        def generator(desc):
            calls.append(desc)
            from repro.arch.isa import KernelProgram

            return KernelProgram(name="p", vlen=4, uops=[])

        def work():
            for _ in range(20):
                cache.get("desc", generator)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(calls) == 1
        st = cache.stats()
        assert st["variants"] == 1
        assert st["hits"] + st["misses"] == 160 and st["misses"] == 1

    def test_stats_mirrored_into_metrics(self, traced):
        from repro.arch.isa import KernelProgram

        m = get_metrics()
        cache = KernelCache()
        cache.get("d", lambda d: KernelProgram(name="p", vlen=4, uops=[]))
        cache.get("d", lambda d: KernelProgram(name="p", vlen=4, uops=[]))
        assert m.value("jit.cache.misses") == 1
        assert m.value("jit.cache.hits") == 1
