"""ConvParams derived-dimension math."""

import pytest

from repro.conv.params import ConvParams
from repro.models.resnet50 import RESNET50_TABLE1, resnet50_layer
from repro.types import ShapeError


class TestDerivedDims:
    def test_same_padding_3x3(self):
        p = ConvParams(N=1, C=16, K=16, H=56, W=56, R=3, S=3, stride=1)
        assert p.pad_h == 1 and p.pad_w == 1
        assert p.P == 56 and p.Q == 56

    def test_7x7_stride2(self):
        # ResNet-50 stem: 224 -> 112
        p = ConvParams(N=1, C=16, K=64, H=224, W=224, R=7, S=7, stride=2)
        assert p.pad_h == 3
        assert p.P == 112 and p.Q == 112

    def test_1x1_stride2(self):
        # 56 -> 28 with no padding
        p = ConvParams(N=1, C=16, K=16, H=56, W=56, R=1, S=1, stride=2)
        assert p.pad_h == 0
        assert p.P == 28 and p.Q == 28

    def test_asymmetric_filter(self):
        # Inception 1x7
        p = ConvParams(N=1, C=16, K=16, H=17, W=17, R=1, S=7, stride=1)
        assert p.pad_h == 0 and p.pad_w == 3
        assert p.P == 17 and p.Q == 17

    def test_explicit_padding(self):
        p = ConvParams(N=1, C=16, K=16, H=10, W=10, R=3, S=3, stride=1,
                       pad_h=0, pad_w=0)
        assert p.P == 8 and p.Q == 8

    def test_flops(self):
        p = ConvParams(N=2, C=16, K=32, H=8, W=8, R=3, S=3, stride=1)
        assert p.flops == 2 * 2 * 16 * 32 * 8 * 8 * 9

    def test_tensor_bytes(self):
        p = ConvParams(N=2, C=16, K=32, H=8, W=8, R=1, S=1, stride=1)
        assert p.input_bytes() == 2 * 16 * 8 * 8 * 4
        assert p.output_bytes() == 2 * 32 * 8 * 8 * 4
        assert p.weight_bytes() == 32 * 16 * 4

    def test_with_minibatch(self):
        p = ConvParams(N=2, C=16, K=16, H=8, W=8, R=1, S=1)
        assert p.with_minibatch(70).N == 70
        assert p.N == 2

    def test_is_1x1(self):
        assert ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1).is_1x1()
        assert not ConvParams(N=1, C=16, K=16, H=8, W=8, R=3, S=3).is_1x1()


class TestValidation:
    def test_nonpositive(self):
        with pytest.raises(ShapeError):
            ConvParams(N=0, C=16, K=16, H=8, W=8, R=1, S=1)

    def test_filter_too_large(self):
        with pytest.raises(ShapeError):
            ConvParams(N=1, C=16, K=16, H=2, W=2, R=7, S=7, stride=1,
                       pad_h=0, pad_w=0)


class TestTable1:
    """Every Table-I layer must produce the spatial dims ResNet-50 uses."""

    EXPECTED_PQ = {
        1: 112, 2: 56, 3: 56, 4: 56, 5: 56, 6: 28, 7: 28, 8: 28, 9: 28,
        10: 28, 11: 14, 12: 14, 13: 14, 14: 14, 15: 14, 16: 7, 17: 7,
        18: 7, 19: 7, 20: 7,
    }

    @pytest.mark.parametrize("lid", sorted(RESNET50_TABLE1))
    def test_output_spatial(self, lid):
        p = resnet50_layer(lid, minibatch=28)
        assert p.P == self.EXPECTED_PQ[lid]
        assert p.Q == self.EXPECTED_PQ[lid]

    def test_channel_padding(self):
        # layer 1's C=3 is padded to VLEN
        assert resnet50_layer(1).C == 16

    def test_minibatches(self):
        assert resnet50_layer(4, minibatch=70).N == 70
