"""Work partitioning (II-F) and dW strategies (II-J)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.machine import KNM, SKX
from repro.conv.params import ConvParams
from repro.parallel.partition import partition_forward, split_range
from repro.parallel.threadsim import ThreadTimes
from repro.parallel.wu_strategies import (
    choose_upd_strategy,
    upd_strategy_traffic,
)


class TestSplitRange:
    def test_exact(self):
        assert split_range(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_front_loaded(self):
        parts = split_range(7, 3)
        sizes = [hi - lo for lo, hi in parts]
        assert sizes == [3, 2, 2]

    def test_more_parts_than_items(self):
        parts = split_range(2, 5)
        sizes = [hi - lo for lo, hi in parts]
        assert sum(sizes) == 2 and max(sizes) == 1


class TestPartitionForward:
    @given(
        n=st.integers(1, 8),
        kb=st.integers(1, 6),
        pb=st.integers(1, 10),
        threads=st.integers(1, 24),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_disjoint_cover(self, n, kb, pb, threads):
        """Every (n, kb, ojb) appears exactly once across threads."""
        work = partition_forward(n, kb, pb, threads)
        seen = set()
        for items in work:
            for it in items:
                for oj in range(it.ojb_lo, it.ojb_hi):
                    key = (it.n, it.kb, oj)
                    assert key not in seen
                    seen.add(key)
        assert len(seen) == n * kb * pb

    def test_minibatch_first_policy(self):
        """T <= N: each thread's items stay within its own n range
        (threads share the whole weight tensor, section II-F)."""
        work = partition_forward(8, 4, 10, 4)
        for items in work:
            ns = {it.n for it in items}
            assert len(ns) == 2  # 8 samples / 4 threads

    def test_feature_map_spill(self):
        """N < T <= N*Kb: threads split (n, kb) pairs, not spatial."""
        work = partition_forward(2, 8, 10, 16)
        for items in work:
            for it in items:
                assert it.ojb_lo == 0 and it.ojb_hi == 10

    def test_spatial_spill(self):
        work = partition_forward(1, 1, 12, 4)
        sizes = [sum(it.blocks for it in items) for items in work]
        assert sizes == [3, 3, 3, 3]

    def test_balance(self):
        work = partition_forward(7, 3, 5, 4)
        sizes = [sum(it.blocks for it in items) for items in work]
        assert max(sizes) - min(sizes) <= 1


class TestThreadTimes:
    def test_wall_is_max(self):
        t = ThreadTimes([1.0, 2.0, 3.0])
        assert t.wall == 3.0
        assert t.imbalance == pytest.approx(0.5)

    def test_balanced(self):
        assert ThreadTimes([2.0, 2.0]).imbalance == 0.0

    def test_empty(self):
        assert ThreadTimes([]).wall == 0.0


class TestWuStrategies:
    P_BIG_DW = ConvParams(N=70, C=2048, K=512, H=7, W=7, R=1, S=1)
    P_SMALL_DW = ConvParams(N=70, C=64, K=64, H=56, W=56, R=3, S=3)

    def test_extremes_traffic_tradeoff(self):
        """G=1 reads activations T/T_c-fold; G=T pays the 2T dW reduction
        (the paper's two extreme algorithms)."""
        shared = upd_strategy_traffic(self.P_SMALL_DW, KNM, 72, 1)
        copies = upd_strategy_traffic(self.P_SMALL_DW, KNM, 72, 72)
        assert copies.input_read < shared.input_read
        assert copies.dw_rw > shared.dw_rw

    def test_small_dw_prefers_copies(self):
        """Tiny weight tensor + big activations -> minibatch parallelism."""
        s = choose_upd_strategy(self.P_SMALL_DW, KNM, 72)
        assert s.ncopies > 1

    def test_big_dw_avoids_full_copies(self):
        """4 MB dW x 72 copies would dominate; expect few copies."""
        s = choose_upd_strategy(self.P_BIG_DW, KNM, 72)
        assert s.ncopies < 72

    def test_chosen_minimizes_estimate(self):
        p = self.P_BIG_DW
        best = choose_upd_strategy(p, KNM, 72)
        for g in (1, 2, 8, 36, 72):
            if 72 % g == 0:
                cand = upd_strategy_traffic(p, KNM, 72, g)
                assert best.est_time <= cand.est_time + 1e-12

    def test_strategy_names(self):
        assert upd_strategy_traffic(self.P_SMALL_DW, SKX, 28, 1).name == "shared"
        assert "copies" in upd_strategy_traffic(self.P_SMALL_DW, SKX, 28, 28).name
