"""Stream serialization and GxM checkpointing."""

import io

import numpy as np
import pytest

from repro.arch.machine import SKX
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.gxm.checkpoint import load_checkpoint, save_checkpoint
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.inference import InferenceSession, fold_batchnorms
from repro.models.resnet50 import resnet_mini_topology
from repro.streams.serialize import load_streams, save_streams, streams_digest
from repro.types import ReproError


class TestStreamSerialization:
    def _engine(self):
        p = ConvParams(N=1, C=16, K=16, H=6, W=6, R=3, S=3, stride=1)
        return DirectConvForward(p, machine=SKX, threads=2)

    def test_roundtrip(self, tmp_path):
        eng = self._engine()
        path = tmp_path / "streams.npz"
        save_streams(path, eng.streams, meta={"layer": "conv1"})
        loaded, meta = load_streams(path)
        assert meta["layer"] == "conv1"
        assert len(loaded) == len(eng.streams)
        for a, b in zip(eng.streams, loaded):
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.i_off, b.i_off)
            assert np.array_equal(a.o_off, b.o_off)

    def test_digest_stable_and_sensitive(self):
        eng = self._engine()
        d1 = streams_digest(eng.streams)
        d2 = streams_digest(self._engine().streams)
        assert d1 == d2  # deterministic dryrun
        other = DirectConvForward(
            ConvParams(N=1, C=16, K=16, H=8, W=8, R=3, S=3, stride=1),
            machine=SKX, threads=2,
        )
        assert streams_digest(other.streams) != d1

    def test_in_memory_file(self):
        eng = self._engine()
        buf = io.BytesIO()
        save_streams(buf, eng.streams)
        buf.seek(0)
        loaded, meta = load_streams(buf)
        assert meta["threads"] == 2
        assert loaded[0].conv_calls == eng.streams[0].conv_calls

    def test_replay_from_loaded_streams(self, tmp_path, rng):
        """Streams reloaded from disk must replay to the same result."""
        p = ConvParams(N=1, C=16, K=16, H=6, W=6, R=3, S=3, stride=1)
        eng = DirectConvForward(p, machine=SKX, threads=2)
        x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
        w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
        before = eng.run_nchw(x, w)
        path = tmp_path / "s.npz"
        save_streams(path, eng.streams)
        eng.streams, _ = load_streams(path)
        from repro.streams.rle import encode_segments

        eng.segments = [encode_segments(s) for s in eng.streams]
        assert np.array_equal(eng.run_nchw(x, w), before)


class TestCheckpoint:
    def _etg(self, seed=0):
        topo = resnet_mini_topology(num_classes=4, width=16)
        return ExecutionTaskGraph(topo, (4, 16, 8, 8), seed=seed)

    def test_roundtrip_restores_outputs(self, tmp_path, rng):
        etg = self._etg(seed=1)
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        y = rng.integers(0, 4, 4)
        etg.train_step(x, y)  # move weights off their init
        from repro.gxm.trainer import SGD

        SGD(etg.params(), lr=0.1).step(etg.grads())
        loss_trained = etg.forward_only(x, y)
        path = tmp_path / "ck.npz"
        save_checkpoint(etg, path)

        fresh = self._etg(seed=2)  # different init
        assert fresh.forward_only(x, y) != pytest.approx(loss_trained)
        restored = load_checkpoint(fresh, path)
        assert restored
        # BN running stats differ (fresh never saw data) -- but they are
        # checkpointed too, so the forward must now agree exactly
        for bn in [n.layer for n in fresh.nodes.values()
                   if hasattr(n, "layer") and hasattr(n.layer, "running_mean")]:
            bn.training = False
        for bn in [n.layer for n in etg.nodes.values()
                   if hasattr(n, "layer") and hasattr(n.layer, "running_mean")]:
            bn.training = False
        assert fresh.forward_only(x, y) == pytest.approx(
            etg.forward_only(x, y), rel=1e-6
        )

    def test_strict_mode_rejects_mismatched_topology(self, tmp_path):
        etg = self._etg()
        path = tmp_path / "ck.npz"
        save_checkpoint(etg, path)
        from repro.gxm.topology import TopologySpec

        other = TopologySpec("other")
        d = other.data("data")
        t = other.conv("convX", d, 16, 3)
        t = other.global_pool("gap", t)
        t = other.fc("fc", t, 4)
        other.loss("loss", t)
        other_etg = ExecutionTaskGraph(other, (4, 16, 8, 8))
        with pytest.raises(ReproError):
            load_checkpoint(other_etg, path)


class TestInference:
    def test_session_toggles_bn_and_restores(self):
        etg = ExecutionTaskGraph(
            resnet_mini_topology(num_classes=4, width=16), (4, 16, 8, 8)
        )
        bns = [n.layer for n in etg.nodes.values()
               if hasattr(n, "layer") and hasattr(n.layer, "running_mean")]
        assert all(bn.training for bn in bns)
        with InferenceSession(etg):
            assert all(not bn.training for bn in bns)
        assert all(bn.training for bn in bns)

    def test_predict_probabilities(self, rng):
        etg = ExecutionTaskGraph(
            resnet_mini_topology(num_classes=4, width=16), (4, 16, 8, 8)
        )
        x = rng.standard_normal((4, 16, 8, 8)).astype(np.float32)
        with InferenceSession(etg) as sess:
            probs = sess.predict(x)
        assert probs.shape == (4, 4)
        assert np.allclose(probs.sum(axis=1), 1.0, rtol=1e-5)

    def test_evaluate_after_training_beats_chance(self):
        from repro.gxm.data import SyntheticImageDataset
        from repro.gxm.trainer import Trainer

        ds = SyntheticImageDataset(n=128, num_classes=4, shape=(16, 8, 8),
                                   seed=6)
        etg = ExecutionTaskGraph(
            resnet_mini_topology(num_classes=4, width=16), (16, 16, 8, 8),
            seed=3,
        )
        Trainer(etg, lr=0.05).fit(ds, batch_size=16, epochs=3)
        with InferenceSession(etg) as sess:
            result = sess.evaluate(ds, batch_size=16)
        assert result.top1 > 0.5
        assert result.top5 >= result.top1
        assert result.n == 128

    def test_fold_batchnorms(self):
        etg = ExecutionTaskGraph(
            resnet_mini_topology(num_classes=4, width=16), (2, 16, 8, 8)
        )
        folded = fold_batchnorms(etg)
        assert folded  # every _bn node present
        for g, b in folded.values():
            assert g.shape == b.shape
