"""Disassembler and the artifact's numerical-norm validation."""

import numpy as np
import pytest

from repro.arch.disasm import disassemble, format_uop, summarize_program
from repro.arch.isa import Op, Uop
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.types import DType
from repro.validation import ValidationError, check, compare

BASE = dict(
    vlen=4, rb_p=1, rb_q=2, R=1, S=1, stride=1,
    i_strides=(100, 20, 4), w_strides=(64, 16, 16, 4), o_strides=(8, 4),
)


class TestDisasm:
    def test_every_op_formats(self):
        """Every kernel family must disassemble without error."""
        progs = [
            generate_conv_kernel(ConvKernelDesc(**BASE, fused_memop=True,
                                                prefetch="both",
                                                fused=("bias", "relu"))),
            generate_conv_kernel(ConvKernelDesc(**BASE, use_4fma=True)),
            generate_conv_kernel(
                ConvKernelDesc(**BASE, dtype=DType.QI16F32,
                               acc_chain_limit=1)
            ),
        ]
        for prog in progs:
            text = disassemble(prog)
            assert prog.name in text
            assert len(text.splitlines()) == len(prog) + 1

    def test_mnemonics(self):
        assert "vfmadd231ps" in format_uop(Uop(Op.VFMA, dst=0, src1=1, src2=2))
        assert "{1to16}" in format_uop(
            Uop(Op.VFMA_MEM, dst=0, src1=1, tensor="I", offset=3)
        )
        assert "v4fmaddps" in format_uop(
            Uop(Op.V4FMA, dst=0, src1=1, tensor="I", offset=0, imm=4.0)
        )
        assert "prefetcht1" in format_uop(Uop(Op.PREFETCH2, tensor="I_pf"))
        assert "I[+3]" in format_uop(Uop(Op.VLOAD, dst=0, tensor="I", offset=3))

    def test_truncation(self):
        prog = generate_conv_kernel(ConvKernelDesc(**BASE))
        text = disassemble(prog, max_lines=3)
        assert "more)" in text

    def test_summary(self):
        prog = generate_conv_kernel(ConvKernelDesc(**BASE))
        s = summarize_program(prog)
        assert "VFMA" in s and "registers used" in s


class TestNorms:
    def test_identical_arrays(self, rng):
        x = rng.standard_normal(100)
        n = compare(x, x)
        assert n.linf_abs == 0 and n.l2_rel == 0

    def test_known_error(self):
        ref = np.ones(4)
        test = np.array([1.0, 1.0, 1.0, 1.1])
        n = compare(test, ref)
        assert n.linf_abs == pytest.approx(0.1)
        assert n.linf_rel == pytest.approx(0.1)
        assert n.l2_abs == pytest.approx(0.1)
        assert n.l2_rel == pytest.approx(0.1 / 2.0)

    def test_zero_reference_guard(self):
        ref = np.array([0.0, 1.0])
        test = np.array([1e-8, 1.0])
        n = compare(test, ref)
        assert np.isfinite(n.linf_rel)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            compare(np.zeros(3), np.zeros(4))

    def test_check_passes_within_tolerance(self, rng):
        ref = rng.standard_normal(64).astype(np.float32)
        test = ref * (1 + 1e-6)
        norms = check(test, ref)
        assert norms.linf_rel < 1e-3

    def test_check_raises_with_report(self, rng):
        ref = rng.standard_normal(64).astype(np.float32)
        with pytest.raises(ValidationError, match="Linf-rel"):
            check(ref * 1.5, ref)

    def test_check_no_raise_mode(self, rng):
        ref = np.ones(4, dtype=np.float32)
        norms = check(ref * 2, ref, raise_on_fail=False)
        assert norms.linf_rel == pytest.approx(1.0)

    def test_str_format(self):
        n = compare(np.ones(2), np.ones(2))
        assert "Linf-abs" in str(n)
