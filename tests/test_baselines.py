"""Baselines: functional equivalence and the Fig. 4 ordering."""

import numpy as np
import pytest

from repro.arch.machine import SKX
from repro.baselines import (
    autovec_forward,
    estimate_autovec,
    estimate_im2col,
    estimate_smallgemm,
    im2col_forward,
    smallgemm_forward,
)
from repro.baselines.im2col import im2col_matrix
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from tests.conftest import assert_close, rand_conv_tensors

CASES = [
    ConvParams(N=2, C=8, K=8, H=6, W=6, R=3, S=3, stride=1),
    ConvParams(N=1, C=16, K=16, H=8, W=8, R=1, S=1, stride=2),
    ConvParams(N=1, C=8, K=16, H=9, W=7, R=3, S=2, stride=2),
]


class TestFunctional:
    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    def test_im2col(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        assert_close(im2col_forward(x, w, p), conv2d_forward(x, w, p))

    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    def test_smallgemm(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        assert_close(smallgemm_forward(x, w, p, vlen=4), conv2d_forward(x, w, p))

    @pytest.mark.parametrize("p", CASES, ids=lambda p: p.describe())
    def test_autovec(self, p, rng):
        x, w, _ = rand_conv_tensors(p, rng)
        assert_close(autovec_forward(x, w, p), conv2d_forward(x, w, p))

    def test_im2col_matrix_shape(self, rng):
        p = CASES[0]
        x, _, _ = rand_conv_tensors(p, rng)
        cols = im2col_matrix(x, p)
        assert cols.shape == (p.N, p.C * p.R * p.S, p.P * p.Q)


@pytest.fixture(scope="module")
def skx_layers():
    model = ConvPerfModel(SKX)
    rows = []
    for lid, p in resnet50_layers(28):
        rows.append(
            {
                "id": lid,
                "tw": model.estimate_forward(p).time_s,
                "im2col": estimate_im2col(p, SKX).time_s,
                "xsmm": estimate_smallgemm(p, SKX, "libxsmm").time_s,
                "blas": estimate_smallgemm(p, SKX, "blas").time_s,
                "autovec": estimate_autovec(p, SKX).time_s,
            }
        )
    return rows


class TestFig4Ordering:
    def test_thiswork_fastest_everywhere(self, skx_layers):
        for row in skx_layers:
            for k in ("im2col", "xsmm", "blas", "autovec"):
                assert row[k] > row["tw"] * 0.95, f"layer {row['id']}: {k}"

    def test_im2col_band(self, skx_layers):
        """Up to ~3x slower (the 7x7 stem pays the full R*S inflation and
        may exceed it)."""
        ratios = [r["im2col"] / r["tw"] for r in skx_layers]
        assert max(ratios) >= 2.0
        interior = [r["im2col"] / r["tw"] for r in skx_layers if r["id"] > 1]
        assert max(interior) <= 6.0

    def test_libxsmm_consistently_beats_blas(self, skx_layers):
        """Section III-A: 'the libxsmm based implementation being
        consistently faster than the blas variant'."""
        for row in skx_layers:
            assert row["xsmm"] < row["blas"], f"layer {row['id']}"

    def test_gemm_baselines_up_to_9x(self, skx_layers):
        ratios = [r["blas"] / r["tw"] for r in skx_layers]
        assert 6.0 <= max(ratios) <= 14.0

    def test_autovec_slowest_band(self, skx_layers):
        """Up to ~16x slower; by far the slowest on most layers."""
        ratios = [r["autovec"] / r["tw"] for r in skx_layers]
        assert 9.0 <= max(ratios) <= 18.0
        worse_than_xsmm = sum(
            1 for r in skx_layers if r["autovec"] > r["xsmm"]
        )
        assert worse_than_xsmm >= len(skx_layers) - 2


class TestEstimatorMetadata:
    def test_impl_tags(self):
        p = dict(resnet50_layers(28))[4]
        assert estimate_im2col(p, SKX).impl == "im2col"
        assert estimate_smallgemm(p, SKX, "libxsmm").impl == "libxsmm"
        assert estimate_autovec(p, SKX).impl == "autovec"

    def test_gemm_call_count(self):
        p = dict(resnet50_layers(28))[18]
        perf = estimate_smallgemm(p, SKX, "blas")
        assert perf.notes["gemm_calls"] > 1e5  # tiny GEMMs galore
