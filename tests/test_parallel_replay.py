"""Thread-parallel stream replay: disjointness makes it safe."""

import numpy as np
import pytest

from repro.arch.machine import SKX
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import Bias, ReLU
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.tensor.blocked import block_activations, block_weights
from tests.conftest import assert_close, rand_conv_tensors


class TestParallelReplay:
    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_matches_sequential(self, threads, rng):
        p = ConvParams(N=4, C=32, K=32, H=12, W=12, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX, threads=threads)
        bx = block_activations(x, 16, pad_h=p.pad_h, pad_w=p.pad_w)
        bw = block_weights(w, 16)
        seq = eng(bx, bw).to_nchw()
        par = eng(bx, bw, parallel=True).to_nchw()
        assert np.array_equal(seq, par)
        assert_close(par, conv2d_forward(x, w, p))

    def test_parallel_with_fusion(self, rng):
        p = ConvParams(N=2, C=32, K=32, H=10, W=10, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        bias = rng.standard_normal(p.K).astype(np.float32)
        eng = DirectConvForward(
            p, machine=SKX, threads=4, fused_ops=[Bias(bias), ReLU()]
        )
        bx = block_activations(x, 16, pad_h=p.pad_h, pad_w=p.pad_w)
        bw = block_weights(w, 16)
        par = eng(bx, bw, parallel=True).to_nchw()
        ref = np.maximum(conv2d_forward(x, w, p) + bias[None, :, None, None], 0)
        assert_close(par, ref)

    def test_output_blocks_disjoint_across_threads(self):
        """The safety precondition: no two threads ever write the same
        output offset (they may share input/weight reads)."""
        p = ConvParams(N=2, C=32, K=32, H=12, W=12, R=3, S=3, stride=1)
        eng = DirectConvForward(p, machine=SKX, threads=4)
        per_thread = []
        for s in eng.streams:
            offs = {int(o) for k, o in zip(s.kinds, s.o_off) if k >= 0}
            per_thread.append(offs)
        for i in range(len(per_thread)):
            for j in range(i + 1, len(per_thread)):
                assert not (per_thread[i] & per_thread[j])

    def test_single_thread_parallel_flag_is_noop(self, rng):
        p = ConvParams(N=1, C=16, K=16, H=6, W=6, R=3, S=3, stride=1)
        x, w, _ = rand_conv_tensors(p, rng)
        eng = DirectConvForward(p, machine=SKX, threads=1)
        bx = block_activations(x, 16, pad_h=1, pad_w=1)
        bw = block_weights(w, 16)
        assert np.array_equal(
            eng(bx, bw).to_nchw(), eng(bx, bw, parallel=True).to_nchw()
        )
