"""Model zoo: Table I fidelity and topology construction."""

import numpy as np
import pytest

from repro.conv.params import ConvParams
from repro.gxm.etg import ExecutionTaskGraph
from repro.models.inception_v3 import INCEPTION_V3_CONVS, inception_v3_layers
from repro.models.resnet50 import (
    RESNET50_LAYER_COUNTS,
    RESNET50_TABLE1,
    resnet50_layers,
    resnet50_topology,
    resnet_mini_topology,
)


class TestTable1:
    def test_twenty_distinct_layers(self):
        assert sorted(RESNET50_TABLE1) == list(range(1, 21))

    def test_exact_paper_rows(self):
        # spot-check the rows against the printed Table I
        assert RESNET50_TABLE1[1] == (3, 64, 224, 224, 7, 7, 2)
        assert RESNET50_TABLE1[11] == (512, 1024, 28, 28, 1, 1, 2)
        assert RESNET50_TABLE1[13] == (256, 256, 14, 14, 3, 3, 1)
        assert RESNET50_TABLE1[20] == (2048, 512, 7, 7, 1, 1, 1)

    def test_counts_cover_all_ids(self):
        assert set(RESNET50_LAYER_COUNTS) == set(RESNET50_TABLE1)

    def test_total_conv_count_is_resnet50(self):
        """ResNet-50 has 53 convolutions (1 stem + 16x3 bottleneck + 4
        projections)."""
        assert sum(RESNET50_LAYER_COUNTS.values()) == 53

    def test_total_weight_count_plausible(self):
        total = sum(
            RESNET50_LAYER_COUNTS[lid] * p.weight_bytes() / 4
            for lid, p in resnet50_layers(1, pad_channels_to=1)
        )
        # conv weights of ResNet-50: ~23.5M parameters
        assert 20e6 < total < 26e6


class TestResnetTopology:
    def test_full_topology_shapes_match_table1(self):
        """Compiling the full ResNet-50 must yield exactly the Table-I
        distinct conv shapes."""
        topo = resnet50_topology()
        etg = ExecutionTaskGraph.__new__(ExecutionTaskGraph)  # shapes only
        # cheaper: walk specs with the shape inference
        from repro.gxm.graph import compile_etg
        from repro.gxm.nodes import output_shape

        enl, _ = compile_etg(topo)
        shapes = {}
        producer = {}
        got = set()
        for layer in enl.layers:
            ins = (
                [(4, 3, 224, 224)]
                if layer.type == "Data"
                else [shapes[b] for b in layer.bottoms]
            )
            out = output_shape(layer, ins)
            for t in layer.tops:
                shapes[t] = out
            if layer.type == "Convolution":
                n, c, h, w = ins[0]
                got.add(
                    (c, layer.attrs["num_output"], h, w,
                     layer.attrs["kernel"], layer.attrs["kernel"],
                     layer.attrs["stride"])
                )
        want = {v for v in RESNET50_TABLE1.values()}
        assert got == want

    def test_mini_topology_trains_shape(self):
        topo = resnet_mini_topology(num_classes=4, width=16)
        etg = ExecutionTaskGraph(topo, (2, 16, 8, 8), seed=0)
        x = np.zeros((2, 16, 8, 8), dtype=np.float32)
        y = np.zeros(2, dtype=np.int64)
        assert np.isfinite(etg.train_step(x, y))


class TestInception:
    def test_conv_count_band(self):
        total = sum(c for *_, c in INCEPTION_V3_CONVS)
        # Inception-v3 has ~94 convolutions
        assert 70 <= total <= 100

    def test_layers_constructible(self):
        layers = inception_v3_layers(28)
        assert all(isinstance(p, ConvParams) for p, _ in layers)
        # factorized 7x1/1x7 and 3x1/1x3 shapes present
        assert any(p.R == 7 and p.S == 1 for p, _ in layers)
        assert any(p.R == 1 and p.S == 3 for p, _ in layers)

    def test_channels_padded_to_vlen(self):
        for p, _ in inception_v3_layers(28):
            assert p.C % 16 == 0 and p.K % 16 == 0

    def test_total_flops_band(self):
        # Inception-v3 fwd ~5.7 GFLOP/image (x2 for MAC=2 convention)
        per_img = sum(p.flops * c for p, c in inception_v3_layers(1, 1)) / 1e9
        assert 8.0 < per_img < 14.0
